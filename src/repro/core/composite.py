"""Detecting complex (non 1-1) mappings — the paper's §2/§9 future work.

"In many common cases, the mappings are one-to-one ... while in others,
the mappings may be more complex (e.g., 'num-baths maps to half-baths +
full-baths')". LSD proper only proposes 1-1 mappings; this module adds a
post-matching detector for the arithmetic case the paper cites: a source
tag whose numeric values equal the sum of two *other* columns of the same
source on (almost) every listing.

When the summand tags are themselves matched to mediated labels, the
detector reports the complex mapping in mediated terms
(``total-baths = FULL-BATHS + HALF-BATHS``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..text import tokenize_numeric
from .instance import InstanceColumn
from .labels import OTHER
from .mapping import Mapping


@dataclass
class CompositeMapping:
    """A detected arithmetic relationship between source columns."""

    tag: str                       # the composite source tag
    part_tags: tuple[str, ...]     # summand source tags
    part_labels: tuple[str, ...]   # their mediated labels (may be OTHER)
    support: float                 # fraction of listings that agree

    def describe(self) -> str:
        rhs_labels = " + ".join(self.part_labels)
        rhs_tags = " + ".join(self.part_tags)
        return (f"{self.tag} = {rhs_tags} "
                f"(i.e. {rhs_labels}; support {self.support:.0%})")


def _numeric_by_listing(column: InstanceColumn) -> dict[int, float]:
    """listing index -> single numeric value (ambiguous listings dropped)."""
    values: dict[int, float] = {}
    dropped: set[int] = set()
    for instance in column.instances:
        numbers = tokenize_numeric(instance.text)
        index = instance.listing_index
        if len(numbers) != 1 or index in values or index in dropped:
            dropped.add(index)
            values.pop(index, None)
            continue
        values[index] = numbers[0]
    return values


def find_composite_mappings(columns: dict[str, InstanceColumn],
                            mapping: Mapping,
                            min_support: float = 0.9,
                            min_listings: int = 5,
                            tolerance: float = 1e-9
                            ) -> list[CompositeMapping]:
    """Detect ``t = a + b`` relationships among a source's columns.

    Only candidate composites that are *unexplained* by the 1-1 mapping
    (tags mapped to OTHER) are searched, matching the workflow: LSD maps
    what it can 1-1, then this detector proposes complex mappings for the
    leftovers.
    """
    numeric = {
        tag: _numeric_by_listing(column)
        for tag, column in columns.items()
    }
    numeric = {tag: values for tag, values in numeric.items()
               if len(values) >= min_listings}

    results: list[CompositeMapping] = []
    targets = [tag for tag in numeric
               if mapping.get(tag, OTHER) == OTHER]
    for target in targets:
        target_values = numeric[target]
        candidates = [tag for tag in numeric if tag != target]
        best: CompositeMapping | None = None
        for a, b in combinations(candidates, 2):
            shared = (set(target_values) & set(numeric[a])
                      & set(numeric[b]))
            if len(shared) < min_listings:
                continue
            hits = sum(
                1 for index in shared
                if abs(numeric[a][index] + numeric[b][index]
                       - target_values[index]) <= tolerance)
            support = hits / len(shared)
            if support >= min_support and \
                    (best is None or support > best.support):
                best = CompositeMapping(
                    tag=target,
                    part_tags=(a, b),
                    part_labels=(mapping.get(a, OTHER),
                                 mapping.get(b, OTHER)),
                    support=support)
        if best is not None:
            results.append(best)
    return results
