"""Shared token/feature cache (the throughput tentpole).

Before this module existed, every text learner re-derived the same
features from the same data: Naive Bayes, the content matcher and the
XML learner each ran ``tokenize`` / ``remove_stopwords`` /
``stem_tokens`` over identical text, so one matching run tokenized every
instance three-plus times (and again on every structure pass). The XML
Matchers survey (Agreste et al.) calls scalability the dominant open
problem for instance-level matchers; per-column featurization cost is
exactly where that time goes.

Two cache layers make featurization happen once:

* a **text-level memo**: :func:`pipeline_tokens` memoises the full
  tokenize→stopword→stem pipeline keyed by the raw text. Real columns
  are duplicate-heavy (the same city, agent or yes/no value repeats in
  hundreds of listings), so this collapses work both across learners
  *and* across instances sharing a value;
* an **instance-level slot**: :func:`content_tokens` pins the token bag
  of an instance's full text content on
  ``ElementInstance.feature_cache``, which also avoids re-walking the
  element subtree to rebuild the text string.

:func:`node_words` serves the XML learner's per-node word lookups
through the same layers, reusing the instance's content tokens for the
common leaf-element case.

Cached token lists are shared — callers must treat them as immutable.

Plugin learners that need different features simply keep calling their
own tokenizers: the cache is opt-in by calling these functions, and
:func:`cache_disabled` turns memoisation off globally (the benchmark
harness uses it to measure the uncached baseline).

Thread-safety: concurrent callers may race to fill the same slot, but
both compute identical values from immutable inputs, so last-write-wins
is correct. The *eviction* path is the one place that needed a real
guard: clear-on-full and insert run under ``_text_cache_lock`` so a
concurrent ``clear()`` landing between a reader's miss and its insert
cannot wipe other threads' mid-flight entries unobserved — eviction is
an atomic clear-then-insert, and lock-free ``get`` reads stay correct
because they only ever see a fully-formed list or nothing. Hit/miss
counts are plain integer adds and therefore approximate under threads;
they are instrumentation, not logic. The dynamic sanitizer
(``repro.analysis.sanitizer.shake_caches``) hammers exactly these
paths.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

from ..text import remove_stopwords, stem_tokens, tokenize
from ..xmlio import Element
from .instance import ElementInstance

#: feature_cache key of the content-token bag.
_CONTENT = "content_tokens"

#: feature_cache key of the concatenated subtree text.
_TEXT = "text"

#: Module switch consulted on every lookup; see :func:`cache_disabled`.
_enabled = True

#: Text-level memo: raw text -> token list. Cleared wholesale when it
#: outgrows the cap — the working set of one matching run (distinct
#: values of one source) is far below it, so eviction is a non-event in
#: practice while still bounding long-lived processes.
_TEXT_CACHE_MAX = 65536
_text_cache: dict[str, list[str]] = {}

#: Guards the eviction/insert path of ``_text_cache`` (reads are
#: lock-free; see the thread-safety note in the module docstring).
_text_cache_lock = threading.Lock()


class CacheStats:
    """Process-wide hit/miss counters for the featurize cache."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}

    def snapshot(self) -> tuple[int, int]:
        """``(hits, misses)`` at this moment — subtract two snapshots
        to attribute cache traffic to one pipeline run."""
        return (self.hits, self.misses)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.hits}, misses={self.misses})"


#: The process-wide counters (reset with ``stats.reset()``).
stats = CacheStats()


def _pipeline(text: str) -> list[str]:
    return stem_tokens(remove_stopwords(tokenize(text)))


def pipeline_tokens(text: str) -> list[str]:
    """The canonical pipeline (tokenize, drop stopwords, stem), memoised
    by the raw text. The returned list is shared — do not mutate it."""
    if not _enabled:
        return _pipeline(text)
    tokens = _text_cache.get(text)
    if tokens is None:
        stats.misses += 1
        tokens = _pipeline(text)
        # Atomic clear-then-insert: without the lock, an eviction on
        # another thread could land between this miss and the insert
        # and silently drop the entry we are about to publish.
        with _text_cache_lock:
            if len(_text_cache) >= _TEXT_CACHE_MAX:
                _text_cache.clear()
            _text_cache[text] = tokens
    else:
        stats.hits += 1
    return tokens


def instance_text(instance: ElementInstance) -> str:
    """``instance.text`` computed at most once per instance.

    ``ElementInstance.text`` walks the whole element subtree on every
    access; the vectorized learners read the same text several times per
    matching run (once per learner, again for distinct-key grouping), so
    the string is pinned on the instance's feature cache. Hit/miss
    accounting is left to the token-level caches — this slot only
    elides tree walks, it derives no features.
    """
    if not _enabled:
        return instance.text
    cache = instance.feature_cache
    text = cache.get(_TEXT)
    if text is None:
        text = cache[_TEXT] = instance.text
    return text


def content_tokens(instance: ElementInstance) -> list[str]:
    """Token bag of the instance's full text content, computed once.

    This is the shared feature the default Naive Bayes tokenizer and the
    content matcher both consume. The instance-level slot also skips
    rebuilding ``instance.text`` (a subtree walk) on repeat lookups.
    """
    if not _enabled:
        return _pipeline(instance.text)
    cache = instance.feature_cache
    tokens = cache.get(_CONTENT)
    if tokens is None:
        tokens = pipeline_tokens(instance_text(instance))
        cache[_CONTENT] = tokens
    else:
        stats.hits += 1
    return tokens


def node_words(instance: ElementInstance, node: Element,
               is_leaf: bool | None = None) -> list[str]:
    """Word tokens of one node's *immediate* text (the XML learner's
    per-node lookup), served through the shared cache layers.

    For the common case — the instance's own element, a leaf with no
    attributes — the immediate text tokenizes identically to the full
    text content (whitespace differences do not survive tokenization),
    so the instance's content tokens are reused outright. Callers that
    already know the node's leaf-ness (a tree walk that just listed the
    children) pass it via ``is_leaf`` to skip re-deriving it.
    """
    if not _enabled:
        return _pipeline(node.immediate_text())
    if is_leaf is None:
        is_leaf = node.is_leaf
    if node is instance.element and not node.attributes and is_leaf:
        return content_tokens(instance)
    return pipeline_tokens(node.immediate_text())


def warm(instances: Sequence[ElementInstance]) -> None:
    """Pre-fill the content-token cache for a batch of instances."""
    for instance in instances:
        content_tokens(instance)


def warm_texts(instances: Sequence[ElementInstance]) -> None:
    """Pre-fill only the subtree-text slot for a batch of instances.

    Every vectorized learner reads :func:`instance_text` to build its
    distinct-key grouping, so the tree walks are needed for the whole
    batch regardless — but token bags are only derived for the distinct
    representatives, so warming *tokens* for the full batch would do
    work the deduplicated learners never ask for.
    """
    for instance in instances:
        instance_text(instance)


def invalidate(instance: ElementInstance) -> None:
    """Drop an instance's cached features (after mutating its element)."""
    instance.feature_cache.clear()


def clear_text_cache() -> None:
    """Empty the process-wide text-level memo (tests, memory pressure)."""
    with _text_cache_lock:
        _text_cache.clear()


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Temporarily bypass memoisation (benchmark baseline; not
    thread-safe — flip it only from the orchestrating thread)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def is_enabled() -> bool:
    """Whether memoisation is currently active."""
    return _enabled
