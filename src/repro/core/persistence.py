"""Save and load trained LSD systems.

The training phase is cheap for a demo but expensive at production scale
(the paper's motivation is amortising user effort over "tens or hundreds
of sources"), so a trained system — learners, meta-learner weights,
constraints, pruner profiles — can be persisted and reloaded.

Pickle is the serialisation layer; a format header guards against loading
files produced by incompatible library versions.

.. warning:: as with any pickle-based format, only load model files you
   trust.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from .system import LSDSystem

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1
_MAGIC = "repro-lsd"

#: What ``pickle.load`` raises on corrupt or incompatible input:
#: UnpicklingError for malformed streams, EOFError for truncation,
#: AttributeError/ImportError for classes that no longer resolve, and
#: IndexError for garbage opcodes. Anything outside this tuple (say a
#: MemoryError, or a RuntimeError from a class's ``__setstate__``) is
#: not a file-format problem and must propagate untranslated.
_UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
)


class ModelFormatError(RuntimeError):
    """The file is not a compatible saved LSD system."""


def save_system(system: LSDSystem, path: str | Path) -> None:
    """Serialise a (typically trained) system to ``path``."""
    payload = {
        "magic": _MAGIC,
        "version": FORMAT_VERSION,
        "system": system,
    }
    path = Path(path)
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_system(path: str | Path) -> LSDSystem:
    """Load a system saved by :func:`save_system`."""
    path = Path(path)
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except _UNPICKLE_ERRORS as exc:
            raise ModelFormatError(
                f"{path} is not a readable LSD model: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ModelFormatError(f"{path} is not an LSD model file")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ModelFormatError(
            f"{path} uses format version {version}, this library reads "
            f"version {FORMAT_VERSION}")
    system = payload["system"]
    if not isinstance(system, LSDSystem):
        raise ModelFormatError(f"{path} does not contain an LSDSystem")
    return system
