"""Save and load trained LSD systems.

The training phase is cheap for a demo but expensive at production scale
(the paper's motivation is amortising user effort over "tens or hundreds
of sources"), so a trained system — learners, meta-learner weights,
constraints, pruner profiles — can be persisted and reloaded.

Pickle is the serialisation layer; a format header guards against loading
files produced by incompatible library versions.

Two on-disk layouts share one loader:

* **version 1** (default): the whole system in one pickle stream —
  simple, single-file, still what :func:`save_system` writes unless
  asked otherwise.
* **version 2** (``save_system(..., array_store=True)``): the model's
  large read-only arrays are hoisted out of the pickle
  (:func:`~repro.core.shared_arrays.extract_arrays`) and written as
  individual ``.npy`` files in a ``<model>.arrays/`` sidecar directory
  next to the model file. :func:`load_system` can then splice them back
  as ``np.load(..., mmap_mode="r")`` memmaps (``mmap_arrays=True``) —
  the OS page cache shares the bytes across every process that loads
  the model, so pool workers and future serving processes attach a
  saved model without a full deserialize-copy, and cold loads only
  fault in the pages the run actually touches.

Array-store lifecycle (who owns, who unlinks):

* the sidecar directory belongs to the model file: copy or delete the
  two together (the loader refuses a model whose sidecar is missing);
* re-saving to the same path overwrites the model file and clears stale
  ``*.npy`` entries from the sidecar — no reader-side cleanup exists;
* mmap-loaded systems keep open file handles on the ``.npy`` files for
  as long as the arrays live; on POSIX, deleting the files under a
  running system is safe (the mapping survives until the system dies),
  it just breaks the *next* load.

.. warning:: as with any pickle-based format, only load model files you
   trust.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from .shared_arrays import extract_arrays, restore
from .system import LSDSystem

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1
#: The hoisted-array sidecar layout; older readers reject it cleanly
#: with their version message rather than misparsing it.
ARRAY_STORE_VERSION = 2
_MAGIC = "repro-lsd"

#: What ``pickle.load`` raises on corrupt or incompatible input:
#: UnpicklingError for malformed streams, EOFError for truncation,
#: AttributeError/ImportError for classes that no longer resolve, and
#: IndexError for garbage opcodes. Anything outside this tuple (say a
#: MemoryError, or a RuntimeError from a class's ``__setstate__``) is
#: not a file-format problem and must propagate untranslated.
_UNPICKLE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
)


class ModelFormatError(RuntimeError):
    """The file is not a compatible saved LSD system."""


def _sidecar_dir(path: Path) -> Path:
    """The array sidecar directory belonging to a model file."""
    return path.with_name(path.name + ".arrays")


def save_system(system: LSDSystem, path: str | Path,
                array_store: bool = False) -> None:
    """Serialise a (typically trained) system to ``path``.

    ``array_store=True`` writes the version-2 layout: the model file
    plus a ``<path>.arrays/`` sidecar of ``.npy`` files holding the
    hoisted arrays — the format :func:`load_system` can memory-map.
    """
    path = Path(path)
    if not array_store:
        payload = {
            "magic": _MAGIC,
            "version": FORMAT_VERSION,
            "system": system,
        }
        with path.open("wb") as handle:
            pickle.dump(payload, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        return
    blob, arrays = extract_arrays(system)
    sidecar = _sidecar_dir(path)
    sidecar.mkdir(exist_ok=True)
    for stale in sidecar.glob("*.npy"):
        stale.unlink()
    names = []
    for index, array in enumerate(arrays):
        name = f"{index:04d}.npy"
        np.save(sidecar / name, array)
        names.append(name)
    payload = {
        "magic": _MAGIC,
        "version": ARRAY_STORE_VERSION,
        "system_payload": blob,
        "arrays": names,
        "sidecar": sidecar.name,
    }
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


def _load_arrays(path: Path, payload: dict, mmap_arrays: bool) -> list:
    sidecar = path.with_name(payload["sidecar"])
    views = []
    for name in payload["arrays"]:
        file = sidecar / name
        if not file.is_file():
            raise ModelFormatError(
                f"{path}: array sidecar file {file} is missing — the "
                f"model file and its .arrays/ directory travel "
                f"together")
        views.append(np.load(file,
                             mmap_mode="r" if mmap_arrays else None))
    return views


def load_system(path: str | Path,
                mmap_arrays: bool = False) -> LSDSystem:
    """Load a system saved by :func:`save_system` (either layout).

    For array-store models, ``mmap_arrays=True`` splices the sidecar
    arrays in as read-only memmaps instead of heap copies — near-zero
    load cost and bytes shared across processes via the page cache. The
    flag is ignored for version-1 single-pickle models (there is
    nothing to map).
    """
    path = Path(path)
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except _UNPICKLE_ERRORS as exc:
            raise ModelFormatError(
                f"{path} is not a readable LSD model: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise ModelFormatError(f"{path} is not an LSD model file")
    version = payload.get("version")
    if version == FORMAT_VERSION:
        system = payload["system"]
    elif version == ARRAY_STORE_VERSION:
        if not all(key in payload for key in
                   ("system_payload", "arrays", "sidecar")):
            raise ModelFormatError(
                f"{path} declares the array-store format but lacks its "
                f"sections — not a file save_system produced")
        views = _load_arrays(path, payload, mmap_arrays)
        try:
            system = restore(payload["system_payload"], views)
        except _UNPICKLE_ERRORS as exc:
            raise ModelFormatError(
                f"{path} is not a readable LSD model: {exc}") from exc
    else:
        raise ModelFormatError(
            f"{path} uses format version {version}, this library reads "
            f"versions {FORMAT_VERSION} and {ARRAY_STORE_VERSION}")
    if not isinstance(system, LSDSystem):
        raise ModelFormatError(f"{path} does not contain an LSDSystem")
    return system
