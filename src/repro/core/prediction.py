"""Confidence-score predictions over a label space.

Every learner prediction in the paper has the form
``<s(c1|x,L), ..., s(cn|x,L)>`` with the scores summing to one. Internally
the library carries dense numpy score matrices for speed;
:class:`Prediction` is the user-facing view of one row.
"""

from __future__ import annotations

import numpy as np

from .labels import LabelSpace


class Prediction:
    """A normalised confidence distribution over a :class:`LabelSpace`."""

    __slots__ = ("space", "scores")

    def __init__(self, space: LabelSpace, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (len(space),):
            raise ValueError(
                f"scores have shape {scores.shape}, label space has "
                f"{len(space)} labels")
        self.space = space
        self.scores = normalize_scores(scores)

    @classmethod
    def from_dict(cls, space: LabelSpace,
                  scores: dict[str, float]) -> "Prediction":
        """Build from a sparse ``{label: score}`` mapping."""
        row = np.zeros(len(space))
        for label, score in scores.items():
            row[space.index_of(label)] = score
        return cls(space, row)

    @classmethod
    def uniform(cls, space: LabelSpace) -> "Prediction":
        """The maximally uncertain prediction."""
        return cls(space, np.ones(len(space)))

    @classmethod
    def certain(cls, space: LabelSpace, label: str) -> "Prediction":
        """All mass on a single label."""
        row = np.zeros(len(space))
        row[space.index_of(label)] = 1.0
        return cls(space, row)

    # ------------------------------------------------------------------
    def score(self, label: str) -> float:
        """Confidence score for ``label``."""
        return float(self.scores[self.space.index_of(label)])

    def top(self) -> str:
        """The label with the highest score."""
        return self.space.label_at(int(np.argmax(self.scores)))

    def top_k(self, k: int) -> list[tuple[str, float]]:
        """The ``k`` highest-scoring ``(label, score)`` pairs."""
        order = np.argsort(self.scores)[::-1][:k]
        return [(self.space.label_at(int(i)), float(self.scores[i]))
                for i in order]

    def as_dict(self) -> dict[str, float]:
        """Dense ``{label: score}`` view."""
        return {label: float(self.scores[i])
                for i, label in enumerate(self.space.labels)}

    def margin(self) -> float:
        """Score gap between the best and second-best label.

        A small margin flags an ambiguous tag — useful for ordering
        feedback requests.
        """
        if len(self.scores) < 2:
            return float(self.scores[0])
        top_two = np.partition(self.scores, -2)[-2:]
        return float(top_two[1] - top_two[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{label}:{score:.2f}"
                          for label, score in self.top_k(3))
        return f"<Prediction {pairs}>"


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Clamp negatives to zero and scale to sum 1 (uniform if all zero).

    Negative raw scores can appear after the meta-learner's least-squares
    combination; the paper normalises combined scores before use.
    """
    scores = np.maximum(np.asarray(scores, dtype=np.float64), 0.0)
    total = scores.sum()
    if total <= 0.0:
        return np.full(scores.shape, 1.0 / scores.shape[-1])
    return scores / total


def normalize_matrix(matrix: np.ndarray) -> np.ndarray:
    """Row-wise :func:`normalize_scores` for an ``(n, n_labels)`` matrix."""
    matrix = np.maximum(np.asarray(matrix, dtype=np.float64), 0.0)
    totals = matrix.sum(axis=1, keepdims=True)
    out = np.where(totals > 0.0, matrix / np.where(totals == 0, 1, totals),
                   1.0 / matrix.shape[1])
    return out
