"""Process execution backend: persistent workers over a shared model.

PR 6 measured the honest thread ceiling: the hot score kernels (scipy
sparse products, ``np.partition``) hold the GIL, so thread fan-out can
only tie serial. This module is the fix ROADMAP item 2 names — worker
*processes*, which the GIL cannot serialise — built so the rest of the
pipeline does not notice the boundary:

* a :class:`WorkerPool` spawns its workers **once** and keeps them for
  the system's lifetime; each worker reconstructs the trained learners
  a single time from a :class:`~repro.core.shared_arrays.
  SharedArrayStore` segment (the TF-IDF CSR triplets, label matrices
  and friends are mapped, not copied — see :mod:`~repro.core.
  shared_arrays`) and keeps its own featurize caches warm across tasks;
* per fan-out, the featurized shard batch is pickled **once** and
  broadcast to every worker; the per-task messages then carry only a
  batch token plus ``[start, stop)`` row bounds, so IPC stays
  sub-dominant no matter how many (learner × shard) tasks a map holds;
* :func:`run_process_map` — the engine behind
  ``ParallelExecutor(backend="process")`` — preserves every contract
  the thread path established: results in submission order, worker
  :class:`~repro.observability.StageProfile` timings merged back in
  submission order, worker-measured spans replayed through
  :meth:`~repro.observability.trace.TraceCollector.emit` so the trace
  tree is structurally byte-identical at any worker count, the
  ``executor.task`` / ``executor.pool`` / ``learner.predict`` fault
  sites fired with the same logical hit counts (parent-side, where the
  plan lives), per-task retries with the same seeded backoff, and a
  serial fallback when the pool is broken.

Division of labour: only base-learner scoring crosses the process
boundary — that is where the GIL-bound kernels live. The meta-learner
combination (one einsum) and the prediction converter (one grouped
reduceat) stay parent-side: they are cheap, and keeping them out of the
workers means quarantine renormalization and score conversion behave
identically across backends. Generic closures handed to
``ParallelExecutor.map`` (cross-validation folds, constraint
root-splits) likewise stay on threads — they capture live object
graphs that have no business being pickled per call.

Worker-side failure semantics mirror the thread path exactly: with an
armed policy a learner exception becomes a :class:`TaskFailure` carried
back as a *value* (quarantine, not crash); without one the original
exception object is shipped home when picklable (re-raised verbatim)
and summarised as a :class:`RemoteTaskError` when not.

Chaos: the ``worker.process`` fault site hard-kills one worker
(``os._exit``, skipping every ``finally``) before a map dispatches —
the genuine crash path. The pool marks itself broken, the interrupted
map falls back to serial, the owner releases the shared segment, and
subsequent maps ride the thread path until the system rebuilds the
pool on its next access.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable
import weakref

from ..observability import StageProfile
from ..observability.metrics import (BYTE_BUCKETS, CPU_BUCKETS,
                                     M_POOL_QUEUE_DEPTH,
                                     M_POOL_QUEUE_WAIT,
                                     M_POOL_SHIP_SKIPS, M_POOL_TASKS,
                                     M_POOL_SHM_BYTES,
                                     M_POOL_WORKER_CPU,
                                     M_POOL_WORKER_RSS,
                                     M_POOL_WORKERS)
from ..observability.resources import ProcSample, read_proc_self
from ..resilience.faults import FaultInjected
from ..resilience.policy import call_with_timeout
from ..resilience.sites import SITE_EXECUTOR_TASK, SITE_WORKER_PROCESS
from .shared_arrays import SharedArrayStore, extract_arrays, restore

#: Batches a worker keeps resident. Every map ships its batches
#: immediately before its tasks, and maps never interleave on one pool,
#: so a small window is always enough; the bound keeps a long match
#: session's memory flat.
_BATCH_WINDOW = 4

#: Worker deaths one map absorbs by re-dispatching the lost shard to a
#: surviving worker — the watchdog-kill recovery path. Beyond this the
#: map raises :class:`PoolBrokenError` and completes serially, exactly
#: like the legacy single-death behaviour.
_REDISPATCH_BUDGET = 2


class PoolBrokenError(RuntimeError):
    """A worker process died (or its pipe broke) mid-conversation."""


class RemoteTaskError(RuntimeError):
    """A worker-side exception whose original object could not be
    pickled home; carries the type name and message instead."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}" if message
                         else error_type)
        self.error_type = error_type


class TaskFailure:
    """A caught learner failure carried back through the map as a value.

    The process-boundary twin of the thread path's caught-exception
    sentinel: only the two strings the quarantine record needs cross
    the pipe, so the parent writes byte-identical
    :class:`~repro.resilience.policy.QuarantineEvent` entries no matter
    which backend (or which side of a fork) the failure happened on.
    """

    __slots__ = ("error_type", "message")

    def __init__(self, error_type: str, message: str) -> None:
        self.error_type = error_type
        self.message = message

    @classmethod
    def from_exception(cls, error: BaseException) -> "TaskFailure":
        return cls(type(error).__name__, str(error))

    @property
    def cause(self) -> str:
        """The quarantine-record cause string (message, else type)."""
        return self.message or self.error_type


@dataclass
class ProcessTask:
    """One unit of a process-backend map: a picklable task descriptor
    plus the parent-side context the executor needs around it.

    ``fallback(profile)`` runs the identical computation locally — the
    serial path, the pool-death path, and the thread backend all use
    it, which is what keeps every backend byte-identical.
    """

    #: Picklable message for the worker's task-handler registry; must
    #: carry ``kind`` and row bounds, never model state.
    payload: dict
    #: The shard batch this task slices; shipped to workers once per
    #: map (shared by identity across the map's tasks).
    batch: list
    #: Local re-execution under the caller's profile (serial fallback).
    fallback: Callable[[StageProfile], object]
    #: Replayed trace span for the worker-side execution.
    span_name: str = ""
    span_parent: str | None = None
    #: Rows this task scores (the span's ``instances`` attribute).
    rows: int = 0
    #: Optional ``(site, key)`` fault gate fired parent-side before
    #: dispatch — the process twin of the thread path's in-task fire.
    fire: tuple[str, str] | None = None
    #: Called in submission order with ``(elapsed, rows)`` after a
    #: successful task — the latency-histogram hook.
    on_done: Callable[[float, int], None] | None = None


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: ``kind -> handler(state, task, profile)``. Handlers run inside
#: worker processes: module-level writes there never reach the parent,
#: which the ``process-unsafe-state`` lint rule enforces statically.
_TASK_HANDLERS: dict[str, Callable] = {}


def task_handler(kind: str):
    """Register a worker-side handler for one task ``kind``.

    A handler returns ``(outcome, hot_elapsed)`` where ``outcome`` is
    ``("value", result)`` or — under an armed policy — ``("failure",
    error_type, message)`` for a caught learner exception, and
    ``hot_elapsed`` is the measured hot-call time feeding the latency
    histogram (0.0 on failure, which the thread path never observes
    either).
    """
    def decorate(fn: Callable) -> Callable:
        _TASK_HANDLERS[kind] = fn
        return fn
    return decorate


@dataclass
class _WorkerState:
    """Everything one worker keeps alive between tasks."""

    learners: dict[str, object]
    #: token -> shipped batch, newest last (bounded by _BATCH_WINDOW).
    batches: dict[int, list] = field(default_factory=dict)


@task_handler("predict")
def _predict_task(state: _WorkerState, task: dict,
                  profile: StageProfile):
    """Score one ``[start, stop)`` shard with one learner.

    Mirrors the thread path's ``predict_with`` body: the profiled stage
    wraps the call, an armed policy (``task["catch"]``) turns any
    exception into a failure outcome, and the hot-call timer covers
    exactly the prediction.
    """
    batch = state.batches[task["batch"]][task["start"]:task["stop"]]
    learner = state.learners[task["learner"]]
    with profile.stage(f"predict.learner.{learner.name}"):
        # Latency telemetry, never pipeline output (same contract as
        # the thread path's timer).
        start = time.perf_counter()  # lsd: ignore[wallclock]
        if not task.get("catch"):
            scores = learner.predict_scores(batch)
        else:
            try:
                scores = call_with_timeout(
                    learner.predict_scores, (batch,),
                    task.get("timeout"))
            except Exception as exc:  # lsd: ignore[blind-except]
                # Quarantine boundary — identical to the thread path:
                # the failure travels as a value, never an exception.
                return (("failure", type(exc).__name__, str(exc)), 0.0)
        elapsed = time.perf_counter() - start  # lsd: ignore[wallclock]
    return (("value", scores), elapsed)


def _run_task(state: _WorkerState, task_id: int, task: dict) -> tuple:
    """Execute one task message; always answers, never raises.

    Replies (all carrying the task's private profile and a
    ``(start, elapsed, hot_elapsed)`` timing triple for span replay):

    * ``("ok", id, value, profile, timing)``
    * ``("failure", id, error_type, message, profile, timing)`` —
      caught learner failure under an armed policy;
    * ``("error", id, exc_or_None, error_type, message, profile,
      timing)`` — anything uncaught; the original exception object
      rides along when picklable so the parent re-raises it verbatim.

    When the task carries ``"sample": True`` a ``/proc/self`` resource
    snapshot dict is appended as one extra trailing element on every
    reply shape — consumers that unpack positionally keep working, and
    the parent surfaces the snapshots as ``pool.*`` metrics.
    """
    profile = StageProfile()
    start = time.time()  # lsd: ignore[wallclock]
    t0 = time.perf_counter()  # lsd: ignore[wallclock]
    try:
        handler = _TASK_HANDLERS[task["kind"]]
        outcome, hot_elapsed = handler(state, task, profile)
    except Exception as exc:  # lsd: ignore[blind-except]
        # The catch-all that keeps the worker loop alive: the parent
        # decides (retry budget, submission-order raise) — a worker
        # only reports.
        timing = (start, time.perf_counter() - t0, 0.0)  # lsd: ignore[wallclock]
        try:
            pickle.dumps(exc)
            shipped: BaseException | None = exc
        except Exception:  # lsd: ignore[blind-except]
            shipped = None
        reply = ("error", task_id, shipped, type(exc).__name__,
                 str(exc), profile, timing)
        return reply + ((read_proc_self().as_dict(),)
                        if task.get("sample") else ())
    timing = (start, time.perf_counter() - t0, hot_elapsed)  # lsd: ignore[wallclock]
    if outcome[0] == "failure":
        reply = ("failure", task_id, outcome[1], outcome[2], profile,
                 timing)
    else:
        reply = ("ok", task_id, outcome[1], profile, timing)
    return reply + ((read_proc_self().as_dict(),)
                    if task.get("sample") else ())


def _worker_main(conn, store_handle: tuple, payload: bytes) -> None:
    """One worker process: attach, reconstruct, serve until told to stop.

    The expensive part happens exactly once — attaching the shared
    segment and re-inflating the learners around its read-only views.
    After that the loop is: receive a broadcast batch or a task, answer
    on the same pipe. ``die`` hard-exits without cleanup (the chaos
    crash path); a vanished parent (EOF on the pipe) ends the loop too,
    so orphaned workers never linger.
    """
    store = SharedArrayStore.attach(store_handle)
    try:
        learners = restore(payload, store.views())
        state = _WorkerState(
            learners={learner.name: learner for learner in learners})
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "die":
                os._exit(1)  # chaos: crash without any cleanup
            if kind == "batch":
                _token, blob = message[1], message[2]
                state.batches[_token] = pickle.loads(blob)
                while len(state.batches) > _BATCH_WINDOW:
                    state.batches.pop(next(iter(state.batches)))
                continue
            try:
                conn.send(_run_task(state, message[1], message[2]))
            except OSError:
                break
    finally:
        # Attacher obligation only: close, never unlink (the owner
        # frees the name; see shared_arrays' lifecycle contract).
        store.close()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# parent side: the pool
# ---------------------------------------------------------------------------

class _WorkerHandle:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


def _release(workers: dict, store: SharedArrayStore) -> None:
    """Idempotent pool teardown (also the ``weakref.finalize`` target):
    stop or terminate every worker, close the pipes, release the shared
    segment. Safe against workers that already crashed."""
    for handle in workers.values():
        if handle.process.is_alive():
            try:
                handle.conn.send(("stop",))
            except OSError:
                pass
    for handle in workers.values():
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass
    store.release()


def default_start_method() -> str:
    """``fork`` where available (cheap start, inherited imports),
    ``spawn`` otherwise — everything shipped to workers is picklable,
    so both behave identically apart from start-up latency."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """A persistent pool of worker processes sharing one trained model.

    Construction is the expensive step — export the learners' arrays
    into a shared segment, spawn the workers, let each attach and
    reconstruct — and happens once per trained system; every map after
    that only moves batches and row bounds. The pool owns the segment:
    :meth:`shutdown` (or the garbage-collection finalizer) releases it,
    and the no-leak tests pin that nothing survives normal exit, worker
    crashes, or chaos runs.
    """

    def __init__(self, learners, workers: int,
                 start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.size = int(workers)
        payload, arrays = extract_arrays(list(learners))
        self._store = SharedArrayStore.create(arrays)
        self._workers: dict[int, _WorkerHandle] = {}
        self.broken = False
        self._batch_tokens = itertools.count()
        #: blob digest -> shipped token; the parent-side mirror of the
        #: workers' batch windows (see :meth:`ship_batch`).
        self._shipped: dict[bytes, int] = {}
        #: Broadcasts skipped by the content-addressed ship cache over
        #: the pool's lifetime (the ``pool.batch_ship_skips`` metric).
        self.ship_skips = 0
        #: worker_id -> monotonic stamp of its in-flight task; set on
        #: dispatch, cleared when the worker answers (or dies). Read by
        #: the watchdog thread through :meth:`dispatch_ages` — GIL-safe
        #: int-keyed dict traffic, no lock needed.
        self._dispatched: dict[int, float] = {}
        try:
            ctx = multiprocessing.get_context(
                start_method or default_start_method())
            for worker_id in range(self.size):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self._store.handle, payload),
                    name=f"lsd-worker-{worker_id}", daemon=True)
                process.start()
                child_conn.close()
                self._workers[worker_id] = _WorkerHandle(process,
                                                         parent_conn)
        except BaseException:
            _release(self._workers, self._store)
            raise
        # Safety net for abandoned pools: runs at GC or interpreter
        # exit if nobody called shutdown(). Captures the workers dict
        # and store, never self.
        self._finalizer = weakref.finalize(
            self, _release, dict(self._workers), self._store)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Usable for dispatch: unbroken and every worker breathing."""
        return (not self.broken and bool(self._workers)
                and all(handle.process.is_alive()
                        for handle in self._workers.values()))

    @property
    def segment_name(self) -> str:
        """The shared segment's name (for the leak tests)."""
        return self._store.name

    @property
    def shm_bytes(self) -> int:
        """Size of the shared model segment (the ``pool.shm_bytes``
        metric)."""
        return self._store.nbytes

    def worker_ids(self) -> list[int]:
        return [worker_id
                for worker_id, handle in self._workers.items()
                if handle.process.is_alive()]

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def ship_batch(self, batch: list) -> int:
        """Broadcast one batch to every worker; returns its token.

        The pickle happens once here, not once per worker and never
        per task — the amortisation that keeps IPC sub-dominant. Ships
        are also content-addressed: re-matching a source re-extracts
        instances that pickle to the same bytes, so a digest hit
        returns the token already resident in every worker and skips
        the broadcast (and each worker's re-unpickling) entirely. The
        parent mirrors the workers' FIFO eviction window exactly —
        same insertion order, same bound — so a hit can never name an
        evicted batch.
        """
        blob = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(blob, digest_size=16).digest()
        cached = self._shipped.get(digest)
        if cached is not None:
            self.ship_skips += 1
            return cached
        token = next(self._batch_tokens)
        try:
            for handle in self._workers.values():
                handle.conn.send(("batch", token, blob))
        except OSError as exc:
            self.broken = True
            raise PoolBrokenError(f"batch broadcast failed: {exc}") \
                from exc
        self._shipped[digest] = token
        while len(self._shipped) > _BATCH_WINDOW:
            self._shipped.pop(next(iter(self._shipped)))
        return token

    def submit(self, worker_id: int, task_id: int,
               payload: dict) -> None:
        try:
            self._workers[worker_id].conn.send(
                ("task", task_id, payload))
        except OSError as exc:
            self.broken = True
            raise PoolBrokenError(f"task dispatch failed: {exc}") \
                from exc
        # Watchdog telemetry (liveness deadline), never pipeline output.
        self._dispatched[worker_id] = \
            time.monotonic()  # lsd: ignore[wallclock]

    def wait(self) -> list[tuple]:
        """Block until something happens; one event per entry.

        ``("result", worker_id, reply)`` for an answered task,
        ``("died", worker_id, None)`` for a worker whose process exited
        or whose pipe broke. Waits on the pipes *and* the process
        sentinels so a crashed worker (which answers nothing, ever)
        still wakes the parent immediately.
        """
        channels: dict = {}
        for worker_id, handle in self._workers.items():
            channels[handle.conn] = ("conn", worker_id)
            channels[handle.process.sentinel] = ("sentinel", worker_id)
        ready = connection.wait(list(channels))
        events: list[tuple] = []
        answered: set[int] = set()
        dead: set[int] = set()
        for obj in ready:
            kind, worker_id = channels[obj]
            if kind != "conn":
                continue
            try:
                reply = self._workers[worker_id].conn.recv()
            except (EOFError, OSError):
                dead.add(worker_id)
            else:
                events.append(("result", worker_id, reply))
                answered.add(worker_id)
        for obj in ready:
            kind, worker_id = channels[obj]
            if (kind == "sentinel" and worker_id not in answered
                    and worker_id not in dead):
                dead.add(worker_id)
        events.extend(("died", worker_id, None)
                      for worker_id in sorted(dead))
        for worker_id in (*answered, *dead):
            self._dispatched.pop(worker_id, None)
        return events

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def dispatch_ages(self) -> dict[int, float]:
        """Seconds each in-flight task has been outstanding, by worker.

        Workers with no dispatched task are absent. The watchdog
        compares these against its deadline; pure telemetry, never
        pipeline output.
        """
        now = time.monotonic()  # lsd: ignore[wallclock]
        return {worker_id: now - stamp
                for worker_id, stamp in list(self._dispatched.items())}

    def kill_worker(self, worker_id: int) -> None:
        """Watchdog escalation: SIGKILL one hung worker parent-side.

        Unlike :meth:`crash_worker` this does **not** mark the pool
        broken — the dead worker's sentinel wakes the map engine, which
        discards it and re-dispatches the lost shard to a survivor
        (bounded; see :func:`run_process_map`). SIGKILL because a hung
        worker may never read another pipe message.
        """
        handle = self._workers.get(worker_id)
        if handle is None or not handle.process.is_alive():
            return
        pid = handle.process.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def discard_worker(self, worker_id: int) -> None:
        """Remove one dead worker from the rotation without breaking
        the pool: join it, close its pipe, shrink :attr:`size` so the
        system rebuilds a full-width pool on its next access."""
        handle = self._workers.pop(worker_id, None)
        self._dispatched.pop(worker_id, None)
        if handle is None:
            return
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():  # pragma: no cover - stuck
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        self.size = max(1, len(self._workers))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def crash_worker(self, worker_id: int) -> None:
        """Chaos hook: hard-kill one worker (``os._exit`` child-side,
        skipping its cleanup) and mark the pool broken."""
        handle = self._workers.get(worker_id)
        if handle is None:
            return
        if handle.process.is_alive():
            try:
                handle.conn.send(("die",))
            except OSError:
                pass
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        self.broken = True

    def retire(self) -> None:
        """Break-and-release: the mid-map crash response. Segment
        hygiene does not wait for anyone to remember ``shutdown``."""
        self.broken = True
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the workers and release the segment (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "broken" if self.broken else "alive"
        return f"<WorkerPool {state} size={self.size}>"


# ---------------------------------------------------------------------------
# parent side: the map engine
# ---------------------------------------------------------------------------

def run_process_map(executor, tasks: list[ProcessTask],
                    profile: StageProfile, label: str,
                    observer=None) -> list:
    """Order-preserving map of :class:`ProcessTask` items over a pool.

    Called by ``ParallelExecutor.map_profiled`` when the process
    backend is live. Replicates the thread path's observable behaviour
    point for point — see the module docstring for the full contract —
    and self-schedules: each worker gets one task up front and the next
    one the moment it answers, so an expensive learner cannot strand
    the other workers idle behind a static partition.
    """
    pool = executor.pool
    policy = executor.policy
    plan = policy.fault_plan if policy is not None else None
    retries = policy.retries if policy is not None else 0
    trace = observer.trace if observer is not None else None
    metrics = (observer.metrics
               if observer is not None and observer.metrics.enabled
               else None)

    def run_serial(skip_done=None) -> list:
        """The local path: same task runner the thread backend uses,
        writing into the shared profile, opening spans inline."""
        runner = executor._task_runner(
            lambda index, item: item.fallback(profile), label)
        out = skip_done if skip_done is not None else [None] * len(tasks)
        for index, item in enumerate(tasks):
            if skip_done is None or not finished[index]:
                out[index] = runner(index, item)
        return out

    # Fired first, exactly like the thread path, so the pool site's
    # logical hit count is identical across backends and worker counts.
    if executor._force_serial(label):
        finished = [False] * len(tasks)
        return run_serial()

    # Chaos: hard-kill a worker before anything is dispatched. Nothing
    # is in flight yet, so the whole map runs serially — byte-identical
    # at any worker count by construction.
    if plan is not None and not pool.broken:
        try:
            plan.fire(SITE_WORKER_PROCESS, label)
        except FaultInjected:
            pool.crash_worker(0)

    n = len(tasks)
    finished = [False] * n
    results: list = [None] * n
    failures = [0] * n
    errors: dict[int, BaseException] = {}
    item_profiles: dict[int, StageProfile] = {}
    span_events: list[tuple] = []   # (index, attempt_seq, timing, err)
    latencies: dict[int, tuple[float, int]] = {}

    if not pool.alive:
        executor._note_pool_failure(label)
        return run_serial()

    def note_failure(index: int, error: BaseException) -> bool:
        """Retry bookkeeping for one failed attempt; True = try again."""
        failures[index] += 1
        if failures[index] > retries:
            if policy is not None and retries:
                policy.report.retried(label, index, failures[index],
                                      False)
            errors[index] = error
            finished[index] = True
            return False
        executor._backoff(label, index, failures[index] - 1)
        return True

    def complete(index: int, value) -> None:
        results[index] = value
        finished[index] = True
        if policy is not None and failures[index]:
            policy.report.retried(label, index, failures[index] + 1,
                                  True)

    def gate(index: int) -> bool:
        """Parent-side fault gates for one attempt, in the thread
        path's order: the task site first (retryable), then the task's
        own fire (a caught failure value). True = dispatch."""
        while True:
            if plan is not None:
                try:
                    plan.fire(SITE_EXECUTOR_TASK, str(index))
                except FaultInjected as exc:
                    if note_failure(index, exc):
                        continue
                    return False
            task = tasks[index]
            if task.fire is not None and plan is not None:
                try:
                    plan.fire(*task.fire)
                except FaultInjected as exc:
                    span_events.append(
                        (index, failures[index], None, None))
                    complete(index, TaskFailure.from_exception(exc))
                    return False
            return True

    # Dispatch wide tasks first (stable on ties): a whole-batch learner
    # handed out last would run alone after every narrow shard drained,
    # stretching the makespan. Scheduling order is free to vary —
    # results, span replay and profile merges are all keyed by
    # submission index, never by completion order.
    pending = deque(sorted(range(n), key=lambda i: -tasks[i].rows))
    outstanding: dict[int, int] = {}
    # Telemetry only, never pipeline output: enqueue stamps feed the
    # queue-wait histogram, last-seen worker snapshots the pool gauges.
    queued_at = {index: time.perf_counter()  # lsd: ignore[wallclock]
                 for index in pending}
    worker_resources: dict[int, dict] = {}

    def feed(worker_id: int) -> None:
        while pending:
            index = pending.popleft()
            if not gate(index):
                continue
            payload = dict(tasks[index].payload)
            payload["batch"] = batch_tokens[id(tasks[index].batch)]
            if metrics is not None:
                payload["sample"] = True
                metrics.counter(M_POOL_TASKS).inc()
                metrics.histogram(M_POOL_QUEUE_WAIT).observe(
                    time.perf_counter()  # lsd: ignore[wallclock]
                    - queued_at[index])
            pool.submit(worker_id, index, payload)
            outstanding[worker_id] = index
            return

    def absorb(index: int, shipped_profile, timing, error_type) -> None:
        if shipped_profile is not None:
            held = item_profiles.get(index)
            if held is None:
                item_profiles[index] = shipped_profile
            else:
                held.merge(shipped_profile)
        span_events.append((index, failures[index], timing, error_type))

    try:
        # One pickle per distinct batch, broadcast before any dispatch.
        batch_tokens: dict[int, int] = {}
        skips_before = pool.ship_skips
        for task in tasks:
            key = id(task.batch)
            if key not in batch_tokens:
                batch_tokens[key] = pool.ship_batch(task.batch)
        if metrics is not None and pool.ship_skips > skips_before:
            metrics.counter(M_POOL_SHIP_SKIPS).inc(
                pool.ship_skips - skips_before)

        for worker_id in pool.worker_ids():
            feed(worker_id)
        if metrics is not None:
            metrics.gauge(M_POOL_QUEUE_DEPTH).set(float(len(pending)))
        deaths = 0
        while outstanding:
            for event in pool.wait():
                if event[0] == "died":
                    # A deliberately crashed pool (chaos, broken pipe)
                    # keeps the legacy contract: serial completion.
                    # Otherwise — a watchdog kill or a spontaneous
                    # death — re-dispatch the lost shard to a survivor,
                    # within the death budget.
                    dead_id = event[1]
                    lost = outstanding.pop(dead_id, None)
                    pool.discard_worker(dead_id)
                    deaths += 1
                    if pool.broken or deaths > _REDISPATCH_BUDGET \
                            or not pool.worker_ids():
                        raise PoolBrokenError(
                            f"worker {dead_id} died during {label!r}")
                    if lost is not None:
                        if policy is not None:
                            policy.report.worker_died(label, dead_id,
                                                      lost)
                        pending.appendleft(lost)
                        queued_at[lost] = \
                            time.perf_counter()  # lsd: ignore[wallclock]
                    for idle_id in pool.worker_ids():
                        if idle_id not in outstanding:
                            feed(idle_id)
                    continue
                worker_id, reply = event[1], event[2]
                index = outstanding.pop(worker_id)
                if metrics is not None:
                    # Sampling was requested on dispatch, so the reply
                    # carries a trailing resource snapshot; keep the
                    # worker's most recent one for the pool gauges.
                    worker_resources[worker_id] = reply[-1]
                    reply = reply[:-1]
                kind = reply[0]
                if kind == "ok":
                    _, _tid, value, prof, timing = reply
                    absorb(index, prof, timing, None)
                    if tasks[index].rows:
                        latencies[index] = (timing[2],
                                            tasks[index].rows)
                    complete(index, value)
                elif kind == "failure":
                    _, _tid, error_type, message, prof, timing = reply
                    absorb(index, prof, timing, None)
                    complete(index, TaskFailure(error_type, message))
                else:  # "error": uncaught worker-side exception
                    (_, _tid, shipped, error_type, message, prof,
                     timing) = reply
                    absorb(index, prof, timing, error_type)
                    error = shipped if shipped is not None else \
                        RemoteTaskError(error_type, message)
                    if note_failure(index, error):
                        pending.append(index)
                        queued_at[index] = \
                            time.perf_counter()  # lsd: ignore[wallclock]
                feed(worker_id)
    except PoolBrokenError:
        # A genuine crash: release the segment immediately, record the
        # degradation, finish every unfinished task locally. Maps after
        # this one see a dead pool and ride the thread path.
        pool.retire()
        executor._note_pool_failure(label)
        run_serial(skip_done=results)

    # Deterministic observability replay, in submission order. Spans
    # always replay (worker threads record theirs regardless of later
    # failures); profiles merge only on a clean map, mirroring
    # map_profiled, which merges after the futures resolved.
    if trace is not None:
        for index, _seq, timing, error_type in sorted(
                span_events, key=lambda event: event[:2]):
            task = tasks[index]
            attributes = {"instances": task.rows}
            if error_type is not None:
                attributes["error"] = error_type
            if timing is None:
                start, elapsed = time.time(), 0.0  # lsd: ignore[wallclock]
            else:
                start, elapsed = timing[0], timing[1]
            trace.emit(task.span_name, parent=task.span_parent,
                       start=start, elapsed=elapsed,
                       attributes=attributes)
    if metrics is not None:
        if not pool.broken:
            metrics.gauge(M_POOL_WORKERS).set(
                float(len(pool.worker_ids())))
            metrics.gauge(M_POOL_SHM_BYTES).set(float(pool.shm_bytes))
        rss_hist = metrics.histogram(M_POOL_WORKER_RSS, BYTE_BUCKETS)
        cpu_hist = metrics.histogram(M_POOL_WORKER_CPU, CPU_BUCKETS)
        for worker_id in sorted(worker_resources):
            sample = ProcSample.from_dict(worker_resources[worker_id])
            rss_hist.observe(float(sample.rss_bytes))
            cpu_hist.observe(sample.cpu_seconds)
    for index in sorted(latencies):
        hook = tasks[index].on_done
        if hook is not None:
            hook(*latencies[index])
    if not errors:
        for index in range(n):
            shipped_profile = item_profiles.get(index)
            if shipped_profile is not None:
                profile.merge(shipped_profile)
    for index in range(n):
        if index in errors:
            raise errors[index]
    return results
