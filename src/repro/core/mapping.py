"""1-1 semantic mappings between source tags and mediated-schema labels."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping as MappingABC

from .labels import OTHER


class Mapping:
    """An immutable 1-1 mapping ``source tag -> label``.

    ``OTHER`` marks a source tag with no mediated counterpart. The mapping
    is "1-1" in the paper's sense — each source tag gets one label — while
    several source tags may share a label only where the domain allows it
    (frequency constraints police that during search).
    """

    def __init__(self, assignments: MappingABC[str, str]) -> None:
        self._assignments: dict[str, str] = dict(assignments)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, str]]) -> "Mapping":
        """Build from ``(source_tag, label)`` pairs."""
        return cls(dict(pairs))

    # ------------------------------------------------------------------
    def __getitem__(self, tag: str) -> str:
        return self._assignments[tag]

    def get(self, tag: str, default: str | None = None) -> str | None:
        """Label of ``tag`` or ``default``."""
        return self._assignments.get(tag, default)

    def __contains__(self, tag: str) -> bool:
        return tag in self._assignments

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Mapping)
                and other._assignments == self._assignments)

    def __hash__(self) -> int:
        return hash(frozenset(self._assignments.items()))

    def items(self) -> Iterator[tuple[str, str]]:
        """Iterate ``(source_tag, label)`` pairs."""
        return iter(self._assignments.items())

    def tags(self) -> tuple[str, ...]:
        """The mapped source tags."""
        return tuple(self._assignments)

    def label_of(self, tag: str) -> str:
        """Label of ``tag`` (KeyError if unmapped)."""
        return self._assignments[tag]

    def tags_for(self, label: str) -> tuple[str, ...]:
        """All source tags mapped to ``label``."""
        return tuple(tag for tag, lab in self._assignments.items()
                     if lab == label)

    def matchable_tags(self) -> tuple[str, ...]:
        """Source tags mapped to a real label (not OTHER)."""
        return tuple(tag for tag, lab in self._assignments.items()
                     if lab != OTHER)

    def with_assignment(self, tag: str, label: str) -> "Mapping":
        """A copy with one assignment changed/added."""
        updated = dict(self._assignments)
        updated[tag] = label
        return Mapping(updated)

    def restricted_to(self, tags: Iterable[str]) -> "Mapping":
        """A copy containing only the given tags."""
        tags = set(tags)
        return Mapping({t: l for t, l in self._assignments.items()
                        if t in tags})

    # ------------------------------------------------------------------
    def accuracy_against(self, truth: "Mapping",
                         matchable_only: bool = True) -> float:
        """Matching accuracy of this mapping w.r.t. a ground truth.

        The paper defines accuracy as "the percentage of matchable
        source-schema tags that are matched correctly"; pass
        ``matchable_only=False`` to score all tags instead.
        """
        tags = (truth.matchable_tags() if matchable_only
                else truth.tags())
        if not tags:
            return 1.0
        correct = sum(
            1 for tag in tags if self.get(tag) == truth.label_of(tag))
        return correct / len(tags)

    def differences(self, truth: "Mapping") -> list[tuple[str, str, str]]:
        """``(tag, predicted, expected)`` for every disagreement."""
        return [(tag, self.get(tag, "<unmapped>"), expected)
                for tag, expected in truth.items()
                if self.get(tag) != expected]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"{t}=>{l}" for t, l in
                          sorted(self._assignments.items())[:4])
        suffix = "..." if len(self._assignments) > 4 else ""
        return f"Mapping({pairs}{suffix})"
