"""LSD core: schemas, labels, mappings, pipelines, and the system façade.

The model layer (labels, predictions, mappings, schemas, instances,
converter) is imported eagerly. The pipeline layer (training, matching,
system, feedback) depends on :mod:`repro.constraints` — which itself uses
the model layer — so those names are resolved lazily to keep the import
graph acyclic.
"""

from . import featurize
from .composite import CompositeMapping, find_composite_mappings
from .converter import PredictionConverter
from .hierarchy import LabelHierarchy, generalize_prediction
from .instance import (ElementInstance, InstanceColumn, extract_columns,
                       fill_child_labels)
from .labels import OTHER, LabelSpace
from .mapping import Mapping
from .parallel import ParallelExecutor
from .prediction import Prediction, normalize_matrix, normalize_scores
from .pruning import TypeProfile, TypePruner
from .schema import MediatedSchema, SourceSchema

__all__ = [
    "CompositeMapping", "ElementInstance", "FeedbackSession",
    "InstanceColumn", "LSDSystem", "find_composite_mappings",
    "LabelHierarchy", "LabelSpace", "Mapping", "MatchResult",
    "MediatedSchema", "OTHER", "ParallelExecutor", "Prediction",
    "PredictionConverter",
    "SourceSchema", "TrainingSource", "TypeProfile", "TypePruner",
    "build_training_set", "extract_columns", "featurize",
    "fill_child_labels",
    "generalize_prediction", "match_source", "normalize_matrix",
    "normalize_scores", "train_base_learners", "train_meta_learner",
]

_LAZY = {
    "FeedbackSession": ("repro.core.feedback", "FeedbackSession"),
    "LSDSystem": ("repro.core.system", "LSDSystem"),
    "MatchResult": ("repro.core.matching", "MatchResult"),
    "TrainingSource": ("repro.core.training", "TrainingSource"),
    "build_training_set": ("repro.core.training", "build_training_set"),
    "match_source": ("repro.core.matching", "match_source"),
    "train_base_learners": ("repro.core.training", "train_base_learners"),
    "train_meta_learner": ("repro.core.training", "train_meta_learner"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value
