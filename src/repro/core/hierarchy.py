"""Label hierarchies for ambiguous tags (§7 of the paper).

The paper's discussion section: given ``course-code: CSE142 section: 2
credits: 3`` it is unclear whether *credits* means the course credits or
the section credits. "If our mediated DTD contains a label hierarchy, in
which each label refers to a concept more general than those of its
descendent labels, then we can match a tag with the most specific
unambiguous label in the hierarchy, and leave it to the user to choose
the appropriate child label."

:class:`LabelHierarchy` declares is-a relationships between labels (e.g.
``CREDIT`` generalises ``COURSE-CREDIT`` and ``SECTION-CREDIT``);
:func:`generalize_prediction` backs an ambiguous prediction off to the
most specific ancestor that covers enough of the probability mass.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from .prediction import Prediction


class LabelHierarchy:
    """An is-a forest over labels.

    Parents need not be labels of the mediated schema itself — abstract
    labels like ``CREDIT`` exist only as backoff targets.
    """

    def __init__(self, edges: Iterable[tuple[str, str]] = ()) -> None:
        self._parent: dict[str, str] = {}
        self._children: dict[str, set[str]] = defaultdict(set)
        for parent, child in edges:
            self.add(parent, child)

    def add(self, parent: str, child: str) -> None:
        """Declare ``child`` is-a ``parent``."""
        if child == parent:
            raise ValueError(f"label {child!r} cannot be its own parent")
        existing = self._parent.get(child)
        if existing is not None and existing != parent:
            raise ValueError(
                f"label {child!r} already has parent {existing!r}")
        # Reject cycles: walking up from `parent` must not reach `child`.
        node: str | None = parent
        while node is not None:
            if node == child:
                raise ValueError(
                    f"adding {parent!r} -> {child!r} creates a cycle")
            node = self._parent.get(node)
        self._parent[child] = parent
        self._children[parent].add(child)

    def parent_of(self, label: str) -> str | None:
        """The immediate generalisation of ``label`` (None at a root)."""
        return self._parent.get(label)

    def children_of(self, label: str) -> set[str]:
        """The immediate specialisations of ``label``."""
        return set(self._children.get(label, ()))

    def ancestors_of(self, label: str) -> list[str]:
        """Generalisations from the immediate parent up to the root."""
        out: list[str] = []
        node = self._parent.get(label)
        while node is not None:
            out.append(node)
            node = self._parent.get(node)
        return out

    def descendants_of(self, label: str) -> set[str]:
        """All labels below ``label`` (any depth)."""
        out: set[str] = set()
        frontier = list(self._children.get(label, ()))
        while frontier:
            node = frontier.pop()
            if node not in out:
                out.add(node)
                frontier.extend(self._children.get(node, ()))
        return out

    def lowest_common_ancestor(self, a: str, b: str) -> str | None:
        """The most specific label generalising both, or None."""
        ancestors_a = [a, *self.ancestors_of(a)]
        ancestors_b = {b, *self.ancestors_of(b)}
        for candidate in ancestors_a:
            if candidate in ancestors_b:
                return candidate
        return None

    def __contains__(self, label: str) -> bool:
        return label in self._parent or label in self._children

    def __len__(self) -> int:
        return len(self._parent)


def generalize_prediction(prediction: Prediction,
                          hierarchy: LabelHierarchy,
                          ambiguity_margin: float = 0.1,
                          coverage: float = 0.7) -> str:
    """The most specific unambiguous label for a prediction.

    If the top label's margin over the runner-up is at least
    ``ambiguity_margin``, the top label stands. Otherwise, if the top
    label and runner-up share an ancestor whose descendant mass reaches
    ``coverage``, that ancestor is proposed instead — "leaving it to the
    user to choose the appropriate child label". Failing that, the
    original top label is returned.
    """
    top_two = prediction.top_k(2)
    if len(top_two) < 2:
        return top_two[0][0]
    (best, best_score), (second, second_score) = top_two
    if best_score - second_score >= ambiguity_margin:
        return best
    ancestor = hierarchy.lowest_common_ancestor(best, second)
    if ancestor is None:
        return best
    mass = _descendant_mass(prediction, hierarchy, ancestor)
    if mass >= coverage:
        return ancestor
    return best


def _descendant_mass(prediction: Prediction, hierarchy: LabelHierarchy,
                     ancestor: str) -> float:
    family = hierarchy.descendants_of(ancestor)
    if ancestor in prediction.space:
        family.add(ancestor)
    return sum(prediction.score(label) for label in family
               if label in prediction.space)
