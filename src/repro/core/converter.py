"""The prediction converter (§3.2 step 2).

After the meta-learner has combined the base learners' predictions for
every data instance of a source tag, the prediction converter collapses
those per-instance predictions into a single prediction for the tag.
"Currently the prediction converter simply computes the average score of
each label from the given predictions" — the ``mean`` strategy; ``median``
and ``max`` are provided for robustness experiments.
"""

from __future__ import annotations

import numpy as np

_STRATEGIES = ("mean", "median", "max")


class PredictionConverter:
    """Collapses an ``(n_instances, n_labels)`` matrix to one score row."""

    def __init__(self, strategy: str = "mean") -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        self.strategy = strategy

    def convert(self, instance_scores: np.ndarray) -> np.ndarray:
        """One normalised score row for the whole column.

        An empty column (the tag never occurred in the extracted sample)
        yields a uniform row: the data gives no evidence either way.
        """
        instance_scores = np.asarray(instance_scores, dtype=np.float64)
        if instance_scores.ndim != 2:
            raise ValueError("expected an (n_instances, n_labels) matrix")
        n_labels = instance_scores.shape[1]
        if instance_scores.shape[0] == 0:
            return np.full(n_labels, 1.0 / n_labels)
        if self.strategy == "mean":
            row = instance_scores.mean(axis=0)
        elif self.strategy == "median":
            row = np.median(instance_scores, axis=0)
        else:
            row = instance_scores.max(axis=0)
        total = row.sum()
        if total <= 0.0:
            return np.full(n_labels, 1.0 / n_labels)
        return row / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredictionConverter({self.strategy!r})"
