"""The prediction converter (§3.2 step 2).

After the meta-learner has combined the base learners' predictions for
every data instance of a source tag, the prediction converter collapses
those per-instance predictions into a single prediction for the tag.
"Currently the prediction converter simply computes the average score of
each label from the given predictions" — the ``mean`` strategy; ``median``
and ``max`` are provided for robustness experiments.

:meth:`PredictionConverter.convert_slices` collapses *every* tag column
of a flat score matrix in one grouped reduction (``ufunc.reduceat`` for
``mean``/``max``), which is how the matching pipeline consumes it. The
per-tag :meth:`~PredictionConverter.convert` routes through the same
kernel, so the two entry points are bitwise interchangeable — reduceat
sums a segment sequentially no matter how segments are grouped, whereas
mixing it with ``np.mean`` (pairwise summation) would not be.

The converter itself is stateless (one strategy string) and never
writes its inputs: both reductions allocate fresh output arrays, so a
read-only score matrix — e.g. combined scores built over zero-copy
shared model state (:mod:`repro.core.shared_arrays`) — flows through
untouched. ``np.asarray`` on such input returns it as-is rather than
copying, which is exactly what the shared-view contract wants.
"""

from __future__ import annotations

import numpy as np

_STRATEGIES = ("mean", "median", "max")


class PredictionConverter:
    """Collapses an ``(n_instances, n_labels)`` matrix to one score row."""

    def __init__(self, strategy: str = "mean") -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {_STRATEGIES}")
        self.strategy = strategy

    def convert(self, instance_scores: np.ndarray) -> np.ndarray:
        """One normalised score row for the whole column.

        An empty column (the tag never occurred in the extracted sample)
        yields a uniform row: the data gives no evidence either way. A
        reduced row whose total is non-finite (a NaN or infinity leaked
        in from a degenerate upstream score) or non-positive also falls
        back to the uniform row instead of silently propagating — the
        guard is ``np.isfinite(total) and total > 0``, because a bare
        ``total <= 0.0`` comparison is *False* for NaN and would let the
        poison through.
        """
        matrix = np.asarray(instance_scores, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("expected an (n_instances, n_labels) matrix")
        return self._reduce_bounds(matrix, [(0, matrix.shape[0])])[0]

    def convert_slices(self, instance_scores: np.ndarray,
                       slices: dict[str, slice]) -> dict[str, np.ndarray]:
        """One normalised score row per tag, in a single grouped pass.

        ``slices`` maps each tag to its contiguous row block of the flat
        ``instance_scores`` matrix (ascending, non-overlapping — the
        layout the matching pipeline builds). Each tag's row is bitwise
        identical to ``convert(instance_scores[slices[tag]])``: both
        paths share :meth:`_reduce_bounds`, including the empty-column
        and non-finite uniform fallbacks.
        """
        matrix = np.asarray(instance_scores, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("expected an (n_instances, n_labels) matrix")
        tags = list(slices)
        bounds = [slices[tag].indices(matrix.shape[0])[:2] for tag in tags]
        rows = self._reduce_bounds(matrix, bounds)
        return {tag: rows[i] for i, tag in enumerate(tags)}

    # ------------------------------------------------------------------
    def _reduce_bounds(self, matrix: np.ndarray,
                       bounds: list[tuple[int, int]]) -> np.ndarray:
        """One normalised row per ``(start, stop)`` segment.

        The shared kernel behind both entry points. ``mean``/``max``
        segments reduce with ``ufunc.reduceat`` — sequential within a
        segment, so grouping segments together cannot change a bit —
        and ``median`` reduces per segment (already deterministic).
        """
        n_labels = matrix.shape[1]
        uniform = np.full(n_labels, 1.0 / n_labels)
        rows = np.empty((len(bounds), n_labels))
        empty = np.array([stop <= start for start, stop in bounds])
        filled = [i for i, is_empty in enumerate(empty) if not is_empty]
        if filled:
            kept = [bounds[i] for i in filled]
            if self.strategy == "median":
                reduced = np.stack([
                    np.median(matrix[start:stop], axis=0)
                    for start, stop in kept])
            else:
                op = np.add if self.strategy == "mean" else np.maximum
                reduced = self._grouped_reduce(op, matrix, kept)
                if self.strategy == "mean":
                    counts = np.array([stop - start
                                       for start, stop in kept])
                    reduced = reduced / counts[:, None]
            rows[filled] = reduced
        # Normalise; non-finite or non-positive totals (and empty
        # segments) fall back to the uniform row. Any non-finite entry
        # poisons its row total, so one finiteness check on the total
        # covers the whole row.
        rows[empty] = uniform
        totals = rows.sum(axis=1, keepdims=True)
        good = np.isfinite(totals) & (totals > 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            rows = np.where(good, rows / np.where(good, totals, 1.0),
                            uniform)
        rows[empty] = uniform
        return rows

    @staticmethod
    def _grouped_reduce(op: np.ufunc, matrix: np.ndarray,
                        bounds: list[tuple[int, int]]) -> np.ndarray:
        """``op``-reduce each non-empty ``[start, stop)`` row segment.

        Ascending non-overlapping segments collapse to one ``reduceat``
        call over interleaved boundaries (dummy gap segments sliced
        away); anything else falls back to one ``reduceat`` per segment
        — the same sequential per-segment reduction, just not batched.
        """
        n = matrix.shape[0]
        indices: list[int] = []
        keep: list[int] = []
        batchable = True
        for i, (start, stop) in enumerate(bounds):
            next_start = bounds[i + 1][0] if i + 1 < len(bounds) else n
            if stop > next_start:
                batchable = False  # overlap: reduceat would mis-segment
                break
            keep.append(len(indices))
            indices.append(start)
            if stop < next_start:
                indices.append(stop)  # close the gap (dummy segment)
        batchable = batchable and all(
            a < b for a, b in zip(indices, indices[1:]))
        if batchable:
            grouped = op.reduceat(
                matrix, np.asarray(indices, dtype=np.intp), axis=0)
            return grouped[keep]
        return np.stack([
            op.reduceat(matrix[start:stop],
                        np.zeros(1, dtype=np.intp), axis=0)[0]
            for start, stop in bounds])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredictionConverter({self.strategy!r})"
