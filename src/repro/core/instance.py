"""Instance extraction: from data listings to per-tag columns.

The matching phase begins by collecting, for each source-schema tag, "a
column of XML elements that belong to it" (§3.2 step 1). The same
extraction feeds training-example creation (§3.1 steps 2-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xmlio import Element
from .schema import SourceSchema


@dataclass
class ElementInstance:
    """One occurrence of a source tag inside a listing.

    ``child_labels`` is filled in by the pipelines: during training it maps
    each child tag to its true label (from the user-provided mapping);
    during matching, to the label LSD currently predicts for that child tag.
    The XML learner consumes it; flat learners ignore it.
    """

    element: Element
    tag: str
    path: tuple[str, ...]
    child_labels: dict[str, str] = field(default_factory=dict)
    #: Index of the listing this instance came from; lets column
    #: constraints (functional dependencies) re-align values row-wise.
    listing_index: int = -1
    #: Lazily filled by :mod:`repro.core.featurize` — tokenized/stemmed
    #: views of the instance text, computed at most once per instance.
    #: Excluded from equality: two instances with the same content are
    #: equal whether or not either has been featurized yet.
    feature_cache: dict = field(default_factory=dict, repr=False,
                                compare=False)

    @property
    def text(self) -> str:
        """All character data in the instance subtree."""
        return self.element.text_content()


@dataclass
class InstanceColumn:
    """All extracted instances of one source tag."""

    tag: str
    path: tuple[str, ...]
    instances: list[ElementInstance]

    def __len__(self) -> int:
        return len(self.instances)

    def texts(self) -> list[str]:
        """Text content of each instance."""
        return [instance.text for instance in self.instances]

    def distinct_values(self) -> set[str]:
        """Distinct text values (used by key/column constraints)."""
        return {instance.text for instance in self.instances}

    def has_duplicates(self) -> bool:
        """True if two instances share the same text value."""
        return len(self.distinct_values()) < len(self.instances)


def extract_columns(schema: SourceSchema,
                    listings: list[Element],
                    max_instances_per_tag: int | None = None
                    ) -> dict[str, InstanceColumn]:
    """Collect the instance column of every schema tag from ``listings``.

    Every tag of the schema gets a column, possibly empty (a tag may be
    optional and absent from the extracted sample). The listing root
    elements themselves are not collected — the root is not matched.

    ``max_instances_per_tag`` caps column sizes; the paper notes LSD "can
    work well with relatively little data", and capping bounds matching
    time on large extractions.
    """
    columns: dict[str, InstanceColumn] = {
        tag: InstanceColumn(tag, schema.path_to(tag), [])
        for tag in schema.tags
    }
    for index, listing in enumerate(listings):
        _collect(listing, (), columns, max_instances_per_tag, index)
    return columns


def _collect(node: Element, path: tuple[str, ...],
             columns: dict[str, InstanceColumn],
             cap: int | None, listing_index: int) -> None:
    child_path = path + (node.tag,)
    for child in node.element_children:
        column = columns.get(child.tag)
        if column is not None and (cap is None or len(column) < cap):
            column.instances.append(
                ElementInstance(child, child.tag, child_path,
                                listing_index=listing_index))
        _collect(child, child_path, columns, cap, listing_index)
    # Attributes are treated like sub-elements (Section 2.1): each
    # attribute value becomes a leaf instance under its attribute name.
    for attr_name, attr_value in node.attributes.items():
        column = columns.get(attr_name)
        if column is not None and (cap is None or len(column) < cap):
            synthetic = Element(attr_name)
            synthetic.append_text(attr_value)
            columns[attr_name].instances.append(
                ElementInstance(synthetic, attr_name, child_path,
                                listing_index=listing_index))


def fill_child_labels(columns: dict[str, InstanceColumn],
                      label_of: dict[str, str]) -> None:
    """Populate ``child_labels`` of every instance from a tag->label map.

    During training ``label_of`` comes from the user mapping; during
    matching, from LSD's current per-tag predictions (§5: the XML learner
    "uses LSD (with the other base learners) to predict for each non-leaf
    and non-root node a label").
    """
    for column in columns.values():
        for instance in column.instances:
            instance.child_labels = {
                descendant.tag: label_of[descendant.tag]
                for descendant in instance.element.iter()
                if descendant is not instance.element
                and descendant.tag in label_of
            }
