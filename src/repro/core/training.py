"""The training phase (§3.1): from user-mapped sources to trained learners.

Steps, as in the paper:

1. the user supplies 1-1 mappings for a few sources (here:
   :class:`TrainingSource` records);
2. data is extracted from each source (``extract_columns``);
3. per-learner training examples are created — in this implementation
   every learner consumes the same :class:`ElementInstance` stream and
   extracts its own features, which is equivalent to the paper's
   per-learner example sets;
4. each base learner is trained;
5. the meta-learner is trained by cross-validating the base learners and
   regressing per-label weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..learners.base import BaseLearner
from ..learners.meta import StackingMetaLearner, cross_validate_many
from ..observability import Observer, StageProfile, resolve_observer
from ..observability.metrics import M_TRAIN_INSTANCES
from ..resilience.policy import call_with_timeout
from ..resilience.sites import SITE_LEARNER_FIT
from ..xmlio import Element
from .instance import (ElementInstance, extract_columns, fill_child_labels)
from .labels import OTHER, LabelSpace
from .mapping import Mapping
from .parallel import ParallelExecutor, resolve
from .schema import SourceSchema


@dataclass
class TrainingSource:
    """One user-mapped source: schema + extracted listings + 1-1 mapping."""

    schema: SourceSchema
    listings: list[Element]
    mapping: Mapping

    def __post_init__(self) -> None:
        unknown = [tag for tag in self.mapping.tags()
                   if tag not in self.schema.tags]
        if unknown:
            raise ValueError(
                f"mapping mentions tags not in schema "
                f"{self.schema.name!r}: {unknown}")


def build_training_set(sources: list[TrainingSource],
                       space: LabelSpace,
                       max_instances_per_tag: int | None = None
                       ) -> tuple[list[ElementInstance], list[str]]:
    """Create the (instance, true-label) training stream (§3.1 steps 2-3).

    Source tags absent from the user mapping are labelled OTHER, training
    the learners to recognise unmatchable elements. Labels outside the
    mediated schema's label space raise: that is a user error in the
    supplied mapping.
    """
    instances: list[ElementInstance] = []
    labels: list[str] = []
    for source in sources:
        columns = extract_columns(source.schema, source.listings,
                                  max_instances_per_tag)
        label_of = {tag: source.mapping.get(tag, OTHER)
                    for tag in source.schema.tags}
        for tag, label in label_of.items():
            if label not in space:
                raise ValueError(
                    f"mapping of source {source.schema.name!r} assigns "
                    f"{tag!r} the unknown label {label!r}")
        fill_child_labels(columns, label_of)
        for tag in source.schema.tags:
            label = label_of[tag]
            for instance in columns[tag].instances:
                instances.append(instance)
                labels.append(label)
    return instances, labels


def train_base_learners(learners: list[BaseLearner],
                        instances: list[ElementInstance],
                        labels: list[str], space: LabelSpace,
                        profile: StageProfile | None = None,
                        observer: Observer | None = None,
                        policy=None) -> list[BaseLearner]:
    """§3.1 step 4: fit every base learner on the training stream.

    Returns the learners that trained successfully. Without a
    ``policy`` that is all of them — any fit error propagates, as it
    always has. With a :class:`repro.resilience.ResiliencePolicy`, a
    learner whose ``fit`` raises (or exceeds the policy's per-call
    timeout) is *quarantined*: dropped from the ensemble and recorded
    in the policy's degradation report, so one broken learner cannot
    take down the training run.

    ``profile``/``observer`` record one ``fit.<learner>`` timing and
    span per base learner.
    """
    obs = resolve_observer(observer)
    names = [learner.name for learner in learners]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate learner names: {names}")
    profile = profile if profile is not None else StageProfile()
    obs.metrics.counter(M_TRAIN_INSTANCES).inc(len(instances))
    survivors: list[BaseLearner] = []
    for learner in learners:
        with profile.stage(f"fit.{learner.name}"), \
                obs.trace.span(f"fit.{learner.name}",
                               instances=len(instances)):
            if policy is None:
                learner.fit(instances, labels, space)
                survivors.append(learner)
                continue
            try:
                policy.fire(SITE_LEARNER_FIT, learner.name)
                call_with_timeout(learner.fit,
                                  (instances, labels, space),
                                  policy.learner_timeout)
            except Exception as exc:  # lsd: ignore[blind-except]
                # Quarantine boundary: *any* learner failure — bugs in
                # plugin learners included — must degrade, not crash.
                policy.report.quarantine(
                    learner.name, "fit",
                    str(exc) or type(exc).__name__,
                    type(exc).__name__)
            else:
                survivors.append(learner)
    return survivors


def train_meta_learner(learners: list[BaseLearner],
                       instances: list[ElementInstance],
                       labels: list[str], space: LabelSpace,
                       folds: int = 5, seed: int = 0,
                       uniform: bool = False,
                       executor: ParallelExecutor | None = None,
                       profile: StageProfile | None = None,
                       observer: Observer | None = None
                       ) -> StackingMetaLearner:
    """§3.1 step 5: cross-validate the base learners and fit the stacking
    weights. ``uniform=True`` skips stacking (the meta-learner ablation)
    and averages learners instead.

    Cross-validation fans out across ``executor`` at (learner × fold)
    granularity — with k learners and d folds the pool sees k*d tasks,
    not k, so workers stay busy even when one learner dominates — and
    results gather deterministically into learner order. ``profile``
    and ``observer`` flow into :func:`~repro.learners.meta.
    cross_validate_many`, so per-fold timings survive the fan-out.
    """
    obs = resolve_observer(observer)
    meta = StackingMetaLearner(folds=folds, seed=seed)
    if uniform:
        meta.fit_uniform([learner.name for learner in learners], space)
        return meta
    per_learner = cross_validate_many(learners, instances, labels, space,
                                      folds=folds, seed=seed,
                                      executor=resolve(executor),
                                      profile=profile, observer=obs)
    cv_scores = {
        learner.name: scores
        for learner, scores in zip(learners, per_learner)
    }
    with obs.trace.span("fit_meta"):
        meta.fit(cv_scores, labels, space)
    return meta
