"""Mediated- and source-schema models.

Both schemas are DTDs (Section 2.1 of the paper); these classes wrap a
:class:`repro.xmlio.DTD` with the queries the matching layers use. The
mediated schema's tags (minus the root) are the class labels; the source
schema's tags (minus the root) are what gets classified.

The root tags are excluded because they describe "one listing" in both
schemas and the paper matches the elements *inside* listings.
"""

from __future__ import annotations

from ..xmlio import DTD, parse_dtd
from .labels import LabelSpace


class _SchemaBase:
    """Shared structural queries over a wrapped DTD."""

    def __init__(self, dtd: DTD | str, name: str | None = None) -> None:
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        self.dtd = dtd
        self.name = name or dtd.name or dtd.root_name()
        self.root = dtd.root_name()

    @property
    def tags(self) -> tuple[str, ...]:
        """All schema tags except the root, in declaration order."""
        return tuple(t for t in self.dtd.tag_names() if t != self.root)

    @property
    def non_leaf_tags(self) -> tuple[str, ...]:
        """Non-leaf tags (excluding the root)."""
        return tuple(t for t in self.dtd.non_leaf_names() if t != self.root)

    @property
    def leaf_tags(self) -> tuple[str, ...]:
        """Leaf tags."""
        return tuple(t for t in self.dtd.leaf_names() if t != self.root)

    def depth(self) -> int:
        """Depth of the schema tree including the root."""
        return self.dtd.depth()

    def path_to(self, tag: str) -> tuple[str, ...]:
        """One shortest tag path from the root down to (excluding) ``tag``.

        Used to expand tag names with their context. If the tag is
        unreachable from the root an empty path is returned.
        """
        if tag == self.root:
            return ()
        frontier: list[tuple[str, tuple[str, ...]]] = [(self.root, ())]
        seen = {self.root}
        while frontier:
            next_frontier: list[tuple[str, tuple[str, ...]]] = []
            for current, path in frontier:
                for child in sorted(self.dtd.children_of(current)):
                    if child == tag:
                        return path + (current,)
                    if child not in seen:
                        seen.add(child)
                        next_frontier.append((child, path + (current,)))
            frontier = next_frontier
        return ()

    def is_nested_within(self, inner: str, outer: str) -> bool:
        """True if ``inner`` can appear below ``outer`` in this schema."""
        return self.dtd.nested_within(outer, inner)

    def siblings(self, a: str, b: str) -> bool:
        """True if some tag may contain both ``a`` and ``b`` directly."""
        return any(
            {a, b} <= self.dtd.children_of(parent)
            for parent in self.dtd.tag_names())

    def children_of(self, tag: str) -> set[str]:
        """Tags that may appear directly inside ``tag``."""
        return self.dtd.children_of(tag)

    def descendant_count(self, tag: str) -> int:
        """Distinct tags nestable within ``tag`` (the §6.3 feedback score)."""
        return self.dtd.descendant_count(tag)

    def sibling_order(self, parent: str) -> list[str]:
        """Declared order of the children of ``parent``.

        Derived from the content model's name references in appearance
        order; used by contiguity and numeric-proximity constraints.
        """
        decl = self.dtd.elements.get(parent)
        if decl is None:
            return []
        order: list[str] = []
        _collect_names(decl.model, order)
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name!r}, "
                f"{len(self.tags)} tags)")


def _collect_names(model, order: list[str]) -> None:
    from ..xmlio import Choice, NameRef, Sequence

    if isinstance(model, NameRef):
        if model.name not in order:
            order.append(model.name)
    elif isinstance(model, (Sequence, Choice)):
        for item in model.items:
            _collect_names(item, order)


class MediatedSchema(_SchemaBase):
    """The virtual schema users query; its tags are the class labels."""

    def label_space(self) -> LabelSpace:
        """Labels = mediated tags (root excluded) + OTHER."""
        return LabelSpace(self.tags)


class SourceSchema(_SchemaBase):
    """The schema of one data source, to be matched against the mediated
    schema."""
