"""E8 — §6.1 claim: "the XML learner outperformed the Naive Bayes learner
by 3-10%" and its gains concentrate where there is nesting.

Head-to-head single-learner comparison on Real Estate II (13 non-leaf
mediated tags — the domain the paper says gives the XML learner "more
room for showing improvements"), plus an internal ablation: the XML
learner with structure tokens disabled degenerates to Naive Bayes.
"""

from repro.datasets import load_domain
from repro.evaluation import (format_table, percent, run_configuration,
                              single_learner_config)

from .common import bench_settings, publish


def run_ablation():
    settings = bench_settings()
    domain = load_domain("real_estate_2", seed=0)
    nb = run_configuration(domain, single_learner_config("naive_bayes"),
                           settings)
    xml = run_configuration(domain, single_learner_config("xml_learner"),
                            settings)
    return nb, xml


def test_xml_vs_nb(benchmark):
    nb, xml = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["Learner", "Real Estate II accuracy"],
        [["naive_bayes (flat bag of words)", percent(nb.mean_accuracy)],
         ["xml_learner (text+node+edge tokens)",
          percent(xml.mean_accuracy)],
         ["delta", percent(xml.mean_accuracy - nb.mean_accuracy)]],
        title="E8: XML learner vs Naive Bayes (single-learner, RE II)")
    publish("xml_vs_nb_ablation", table)

    # Shape: the structural learner beats the flat learner on the
    # structure-heavy domain.
    assert xml.mean_accuracy >= nb.mean_accuracy
