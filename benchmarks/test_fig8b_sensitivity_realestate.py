"""E3 — Figure 8(b): accuracy vs data volume, Real Estate I.

Sweeps the number of listings per source and reports the ladder
configurations at each point. Expected shape (paper): accuracy "climbs
steeply in the range 5-20, minimally from 20 to 200, and levels off
after 200".
"""

import os

from repro.datasets import load_domain
from repro.evaluation import run_sensitivity, sensitivity_series

from .common import bench_settings, publish


def sweep_counts() -> tuple[int, ...]:
    raw = os.environ.get("LSD_BENCH_SWEEP", "5,10,20,50")
    return tuple(int(x) for x in raw.split(","))


def run_sweep():
    settings = bench_settings()
    domain = load_domain("real_estate_1", seed=0)
    return run_sensitivity(domain, settings,
                           listing_counts=sweep_counts())


def test_fig8b(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish("fig8b_sensitivity_realestate",
            sensitivity_series(
                sweep, "Figure 8(b): accuracy vs listings, Real Estate I"))

    counts = sorted(sweep)
    complete = [sweep[c]["complete"].mean_accuracy for c in counts]
    # Shape: more data never hurts much...
    assert complete[-1] >= complete[0] - 0.05
    # ...and the curve has flattened by the last point: the final step
    # gains far less than the whole climb.
    total_climb = complete[-1] - complete[0]
    last_step = complete[-1] - complete[-2]
    assert last_step <= max(0.5 * total_climb, 0.05)
