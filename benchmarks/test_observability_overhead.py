"""Disabled-observability overhead: the no-op path must be ~free.

Every pipeline layer now carries observability hooks (spans, counters,
histograms). With no observer those hooks hit the shared null objects —
this benchmark pins the cost of that down:

1. An observed matching run counts how many hook invocations one run
   actually performs (spans recorded + a generous allowance for metric
   calls).
2. That many no-op span/counter/histogram invocations are timed
   directly; their total must stay under 3% of the *fastest* matching
   run — i.e. the instrumentation's disabled path cannot account for
   even 3% of end-to-end time.
3. A sanity check matches with the disabled observer explicitly and
   asserts outputs identical to the observer-less call.

Writes ``BENCH_observability.json`` at the repo root.

Environment knobs::

    LSD_BENCH_OBS_LISTINGS   listings per source (default 50)
    LSD_BENCH_OBS_ROUNDS     timing rounds       (default 3)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import featurize
from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system
from repro.observability import NO_OP, Observer

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_observability.json"
N_LISTINGS = int(os.environ.get("LSD_BENCH_OBS_LISTINGS", "50"))
ROUNDS = int(os.environ.get("LSD_BENCH_OBS_ROUNDS", "3"))
MAX_OVERHEAD = 0.03

#: Metric-instrument calls per span, as a deliberate overestimate — the
#: pipelines make far fewer counter/histogram calls than spans.
METRIC_CALLS_PER_SPAN = 8


def _build():
    domain = load_domain("real_estate_1", seed=0)
    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=N_LISTINGS)
    for source in domain.sources[:3]:
        system.add_training_source(
            source.schema, source.listings(N_LISTINGS), source.mapping)
    system.train()
    target = domain.sources[3]
    return system, target.schema, target.listings(N_LISTINGS)


def _time_noop_hooks(invocations: int) -> float:
    """Seconds spent driving the null observer ``invocations`` times
    through one span + one counter inc + one histogram observation."""
    trace, metrics = NO_OP.trace, NO_OP.metrics
    start = time.perf_counter()
    for _ in range(invocations):
        with trace.span("hook") as span:
            span.set_attribute("k", 1)
        metrics.counter("c").inc()
        metrics.histogram("h").observe(0.001, count=4)
    return time.perf_counter() - start


def test_disabled_observability_overhead():
    system, schema, listings = _build()

    # Count the hooks one observed run performs.
    featurize.clear_text_cache()
    observed = Observer.full()
    observed_result = system.match(schema, listings, observer=observed)
    spans = len(observed.trace.spans)
    hook_invocations = spans * METRIC_CALLS_PER_SPAN

    # Fastest observer-less matching run.
    best = float("inf")
    for _ in range(ROUNDS + 1):  # first round doubles as warm-up
        featurize.clear_text_cache()
        start = time.perf_counter()
        baseline_result = system.match(schema, listings)
        best = min(best, time.perf_counter() - start)

    noop_seconds = min(_time_noop_hooks(hook_invocations)
                       for _ in range(ROUNDS))
    overhead = noop_seconds / best

    # Disabled observer changes nothing about the outputs.
    featurize.clear_text_cache()
    noop_result = system.match(schema, listings, observer=NO_OP)
    assert dict(noop_result.mapping.items()) == \
        dict(baseline_result.mapping.items()) == \
        dict(observed_result.mapping.items())
    for tag in baseline_result.tag_scores:
        assert np.array_equal(noop_result.tag_scores[tag],
                              baseline_result.tag_scores[tag])
    assert noop_result.quality == [] and baseline_result.quality == []
    assert len(observed_result.quality) == len(schema.tags)

    report = {
        "workload": {
            "domain": "real_estate_1",
            "listings_per_source": N_LISTINGS,
            "rounds": ROUNDS,
            "spans_per_observed_run": spans,
            "noop_hook_invocations": hook_invocations,
        },
        "match_best_ms": round(best * 1000.0, 3),
        "noop_hooks_ms": round(noop_seconds * 1000.0, 3),
        "disabled_overhead": round(overhead, 5),
        "max_allowed": MAX_OVERHEAD,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + json.dumps(report, indent=2))

    assert overhead < MAX_OVERHEAD, (
        f"no-op observability hooks cost {overhead:.2%} of a matching "
        f"run (limit {MAX_OVERHEAD:.0%})")
