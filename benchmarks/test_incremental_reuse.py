"""E10 — §3.1's reuse claim: confirmed matchings keep improving LSD.

"Once a new source has been matched by LSD and the matchings have been
confirmed/refined by the user, it can serve as an additional training
source, making LSD unique in that it can directly and seamlessly reuse
past matchings to continuously improve its performance."

This bench trains on one source, then confirms sources one at a time,
matching a held-out source after each confirmation. Expected shape: the
held-out accuracy trends upward as confirmed sources accumulate.
"""

from repro.datasets import load_domain
from repro.evaluation import (SystemConfig, build_system, format_table,
                              percent)

from .common import bench_settings, publish


def run_incremental():
    settings = bench_settings()
    domain = load_domain("real_estate_2", seed=0)
    held_out = domain.sources[4]
    held_listings = held_out.listings(settings.n_listings)

    system = build_system(
        domain, SystemConfig("complete"),
        max_instances_per_tag=settings.max_instances_per_tag)
    accuracies: list[tuple[int, float]] = []
    for count, source in enumerate(domain.sources[:4], start=1):
        if count == 1:
            system.add_training_source(
                source.schema, source.listings(settings.n_listings),
                source.mapping)
            system.train()
        else:
            # The user confirms the proposed (here: true) mapping and LSD
            # folds the source back into training.
            system.confirm_and_learn(
                source.schema, source.listings(settings.n_listings),
                source.mapping)
        result = system.match(held_out.schema, held_listings)
        accuracies.append(
            (count, result.mapping.accuracy_against(held_out.mapping)))
    return accuracies


def test_incremental_reuse(benchmark):
    accuracies = benchmark.pedantic(run_incremental, rounds=1,
                                    iterations=1)
    rows = [[str(count), percent(accuracy)]
            for count, accuracy in accuracies]
    publish("incremental_reuse", format_table(
        ["Confirmed training sources", "Held-out accuracy"], rows,
        title="E10: accuracy grows as confirmed sources accumulate "
              "(Real Estate II)"))

    first = accuracies[0][1]
    best_later = max(accuracy for __, accuracy in accuracies[1:])
    # Shape: more confirmed sources help (strictly, on this hard domain).
    assert best_later > first
    assert accuracies[-1][1] >= first
