"""E14 — §7's error breakdown: why the remaining tags are missed.

The paper attributes residual errors to (1) labels with no training data
(the "suburb problem"), (2) tags needing different learner types, and
(3) genuinely ambiguous tags. This bench reproduces that breakdown by
classifying every mistake the complete system makes across all domains.
"""

from collections import Counter

from repro.datasets import load_all_domains
from repro.evaluation import (SystemConfig, build_system, format_table,
                              analyze_errors, trained_label_set,
                              train_test_splits)

from .common import bench_settings, publish


def run_analysis():
    settings = bench_settings()
    causes: Counter = Counter()
    total_wrong = 0
    total_tags = 0
    for domain in load_all_domains(seed=0):
        for train_sources, test_sources in train_test_splits(
                domain.sources, settings.max_splits):
            system = build_system(
                domain, SystemConfig("complete"),
                max_instances_per_tag=settings.max_instances_per_tag)
            for source in train_sources:
                system.add_training_source(
                    source.schema,
                    source.listings(settings.n_listings),
                    source.mapping)
            system.train()
            trained = trained_label_set(system)
            for source in test_sources:
                result = system.match(
                    source.schema,
                    source.listings(settings.n_listings))
                report = analyze_errors(result, source.mapping, trained)
                causes.update(report.by_cause())
                total_wrong += len(report)
                total_tags += len(source.schema.tags)
    return causes, total_wrong, total_tags


def test_error_analysis(benchmark):
    causes, total_wrong, total_tags = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1)
    rows = [[cause, str(count),
             f"{count / total_wrong * 100:.0f}%" if total_wrong else "-"]
            for cause, count in causes.most_common()]
    rows.append(["(total wrong / total tags)",
                 f"{total_wrong} / {total_tags}",
                 f"{total_wrong / total_tags * 100:.1f}%"])
    publish("error_analysis", format_table(
        ["Error cause (§7)", "Count", "Share"], rows,
        title="E14: why the remaining tags are mismatched"))

    # Shape: the system is overall accurate, and every recorded error has
    # one of the three §7 causes.
    assert total_wrong <= 0.35 * total_tags
    assert set(causes) <= {"no-training-data", "ambiguous", "misranked"}
