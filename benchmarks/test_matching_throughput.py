"""Matching-engine throughput: the PR's engine vs the pre-PR pipeline.

Measures end-to-end matching (train once, then match every held-out
source of Real Estate I in one process) under four configurations:

``seed``
    A faithful re-implementation of the pre-PR pipeline: dense WHIRL
    scoring (``todense`` + dense top-k + dense log-sums), no featurize
    memoisation, no duplicate-row collapsing, and structure passes that
    re-predict every instance.
``cache_off``
    The new engine with memoisation switched off (still sparse scoring).
``serial``
    The new engine at ``--workers 1``.
``par4``
    The new engine at ``--workers 4`` on the thread backend.
``proc4``
    The new engine at ``--workers 4`` on the process backend (a
    persistent worker pool sharing the model through shared memory; the
    pool is built during warm-up, so rounds time steady-state dispatch,
    not pool construction).
``ckpt``
    ``serial`` plus an armed checkpoint (``--checkpoint-dir``): every
    stage snapshot is pickled, fsynced, and renamed into a fresh
    checkpoint directory each round. Gated to within
    ``CKPT_TOLERANCE`` of ``serial`` — durability must stay effectively
    free — and byte-identical to it.

Configurations are interleaved round-robin and each reports its best
round, so machine-load drift hits all of them equally. The benchmark
asserts that every new-engine configuration produces *byte-identical*
``tag_scores``, that cache+parallelism beats the seed pipeline by at
least 3x, that ``par4`` stays at parity with ``serial`` (within
``PAR_TOLERANCE``), that ``proc4`` beats serial by ``MIN_PROC_SPEEDUP``
when the host actually has 4 cores (below that the GIL was never the
bottleneck and ``proc4`` only needs to stay within ``PROC_TOLERANCE``
of serial), and that seed-relative serial throughput has not regressed
more than 25% against the committed ``BENCH_matching.json``, then
rewrites that file at the repo root. The report records the backend and
``cpu_count`` per configuration so a committed ``proc4`` number is
never read without the core count that produced it. Each
configuration's timings are also appended to the run ledger
(``.lsd/ledger.jsonl``, one ``bench:matching:<name>`` series per
configuration) so ``python -m repro ledger check`` gates bench
regressions across runs.

The seed emulation is compared on time only: its outputs differ from the
new engine exactly where this PR fixed the WHIRL top-k tie bug (the seed
kept every neighbour tied at the k-th similarity).

Environment knobs::

    LSD_BENCH_THROUGHPUT_LISTINGS   listings per source (default 100)
    LSD_BENCH_THROUGHPUT_ROUNDS     timing rounds       (default 3)
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core import featurize
from repro.core.matching import match_source
from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system
from repro.learners.whirl import WhirlIndex
from repro.observability import Observer, dataset_fingerprint
from repro.observability import ledger as run_ledger
from repro.runtime import Checkpointer, run_key

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_matching.json"
LEDGER_PATH = BENCH_PATH.parent / run_ledger.DEFAULT_PATH
N_LISTINGS = int(os.environ.get("LSD_BENCH_THROUGHPUT_LISTINGS", "100"))
ROUNDS = int(os.environ.get("LSD_BENCH_THROUGHPUT_ROUNDS", "3"))
MIN_SPEEDUP = 3.0
#: ``par4`` may not trail ``serial`` by more than this factor. The hot
#: kernels hold the GIL (see ``repro.core.parallel``), so threads tie
#: serial rather than beat it; the committed par4-slower-than-serial
#: inversion stays within scheduler noise and can never silently grow.
PAR_TOLERANCE = 1.10
#: Floor on seed-relative serial throughput vs the committed bench:
#: comparing the *ratio* (not wall-clock) cancels host-speed drift
#: between the committing machine and this one.
REGRESSION_TOLERANCE = 0.75
#: What ``proc4`` must deliver over serial on a host with >= 4 cores —
#: the scaling the process backend exists for (ISSUE 7 acceptance).
MIN_PROC_SPEEDUP = 1.5
#: On hosts with fewer than 4 cores there is no parallelism to win;
#: ``proc4`` then only has to keep its IPC overhead bounded: no worse
#: than this factor over serial (best-of-rounds or total-of-rounds,
#: same dual-metric rule as ``PAR_TOLERANCE``).
PROC_TOLERANCE = 2.0
#: Ceiling on checkpointed-vs-serial wall clock: stage snapshots ride
#: the atomic artifact writer (temp + fsync + rename) and must stay
#: within a few percent of the uncheckpointed run (ISSUE 10
#: acceptance). Same dual-metric rule as ``PAR_TOLERANCE``.
CKPT_TOLERANCE = 1.03
#: Cores this run actually has; gates which ``proc4`` assertion
#: applies and is recorded in the report.
CPU_COUNT = os.cpu_count() or 1


# ---------------------------------------------------------------------------
# the pre-PR pipeline, reproduced for timing
# ---------------------------------------------------------------------------

def _seed_whirl_scores(self, queries):
    """The seed ``WhirlIndex.scores``: dense end to end, no dedup, and
    the pre-fix top-k that keeps every neighbour tied at the k-th
    similarity."""
    if self._space is None or self._label_matrix is None \
            or self._labels is None:
        raise RuntimeError("WhirlIndex is not fitted")
    if not queries:
        return np.zeros((0, len(self._labels)))
    sims = self._space.similarities(list(queries))
    sims = np.clip(sims, 0.0, 1.0 - 1e-9)
    if self.min_similarity > 0.0:
        sims[sims < self.min_similarity] = 0.0
    k = self.max_neighbors
    if k is not None and sims.shape[1] > k:
        thresholds = np.partition(sims, -k, axis=1)[:, -k][:, None]
        sims = np.where(sims >= thresholds, sims, 0.0)
    log_miss = np.log1p(-sims)
    grouped = log_miss @ self._label_matrix
    raw = 1.0 - np.exp(grouped)
    totals = raw.sum(axis=1, keepdims=True)
    uniform = np.full_like(raw, 1.0 / raw.shape[1])
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0.0, raw / totals, uniform)


@contextmanager
def _seed_pipeline():
    """Run matching the way the repo did before this PR."""
    original = WhirlIndex.scores
    WhirlIndex.scores = _seed_whirl_scores
    try:
        with featurize.cache_disabled():
            yield
    finally:
        WhirlIndex.scores = original


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _build_trained_system():
    domain = load_domain("real_estate_1", seed=0)
    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=N_LISTINGS)
    for source in domain.sources[:3]:
        system.add_training_source(
            source.schema, source.listings(N_LISTINGS), source.mapping)
    system.train()
    targets = [(source.schema, source.listings(N_LISTINGS))
               for source in domain.sources[3:]]
    return system, targets


def _run_engine(system, targets, workers, cached, backend="thread"):
    """One engine run: match every held-out source in one process.

    The text memo starts cold (a fresh match process) and stays warm
    across the sources — the cached engine's legitimate advantage. The
    process backend's worker pool likewise persists across rounds
    (``system.close_pool()`` is never called here): its construction is
    a once-per-trained-model cost, so steady-state rounds time batch
    shipping and dispatch, which is what serving would pay.
    """
    featurize.clear_text_cache()
    system.workers = workers
    system.backend = backend
    try:
        if cached:
            return [system.match(schema, listings)
                    for schema, listings in targets]
        with featurize.cache_disabled():
            return [system.match(schema, listings)
                    for schema, listings in targets]
    finally:
        system.backend = "thread"


def _run_ckpt(system, targets):
    """The ``serial`` run with an armed checkpoint in the CLI's
    background-writer mode: every stage snapshot actually hits disk
    (serialize + fsync + rename) into a fresh directory, and the
    ``close()`` drain is timed too — never a resume."""
    featurize.clear_text_cache()
    system.workers = 1
    with tempfile.TemporaryDirectory(prefix="lsd-bench-ckpt") as ckdir:
        results = []
        for schema, listings in targets:
            fingerprint = dataset_fingerprint(
                schema.tags,
                [listing.text_content() for listing in listings])
            checkpoint = Checkpointer(ckdir, run_key(fingerprint),
                                      background=True)
            checkpoint.open(resume=False)
            try:
                results.append(system.match(schema, listings,
                                            checkpoint=checkpoint))
            finally:
                checkpoint.close()
        return results


def _collect_histograms(system, targets):
    """One observed (untimed) serial run: per-instance prediction
    latency and column-size distributions for the bench report."""
    featurize.clear_text_cache()
    system.workers = 1
    observer = Observer.full()
    for schema, listings in targets:
        system.match(schema, listings, observer=observer)
    return observer.metrics.summary()["histograms"]


def _run_seed(system, targets):
    """One pre-PR run: dense scoring, full structure re-prediction."""
    score_filter = system.pruner.prune_scores if system.pruner else None
    with _seed_pipeline():
        return [
            match_source(schema, listings, system.learners, system.meta,
                         system.converter, system.handler, system.space,
                         max_instances_per_tag=system.max_instances_per_tag,
                         score_filter=score_filter,
                         incremental_structure=False)
            for schema, listings in targets
        ]


def test_matching_throughput():
    system, targets = _build_trained_system()

    configs = {
        "seed": lambda: _run_seed(system, targets),
        "cache_off": lambda: _run_engine(system, targets, 1, False),
        "serial": lambda: _run_engine(system, targets, 1, True),
        "par4": lambda: _run_engine(system, targets, 4, True),
        "proc4": lambda: _run_engine(system, targets, 4, True,
                                     backend="process"),
        "ckpt": lambda: _run_ckpt(system, targets),
    }

    try:
        for run in configs.values():  # warm-up: imports, allocator,
            run()                     # memo, and the proc4 worker pool

        best = {name: float("inf") for name in configs}
        total = {name: 0.0 for name in configs}
        results = {}
        for _ in range(ROUNDS):
            for name, run in configs.items():
                start = time.perf_counter()
                results[name] = run()
                elapsed = time.perf_counter() - start
                best[name] = min(best[name], elapsed)
                total[name] += elapsed
    finally:
        system.close_pool()

    # Determinism: every new-engine configuration is byte-identical.
    reference = results["serial"]
    for name in ("cache_off", "par4", "proc4", "ckpt"):
        for ref, res in zip(reference, results[name]):
            assert set(ref.tag_scores) == set(res.tag_scores)
            for tag in ref.tag_scores:
                assert np.array_equal(ref.tag_scores[tag],
                                      res.tag_scores[tag]), \
                    f"{name} diverged from serial on {tag!r}"
            assert dict(ref.mapping.items()) == dict(res.mapping.items())

    hits = sum(r.profile.counters.get("cache_hits", 0)
               for r in reference)
    misses = sum(r.profile.counters.get("cache_misses", 0)
                 for r in reference)
    instances = sum(r.profile.counters.get("instances", 0)
                    for r in reference)

    speedups = {
        "serial_vs_seed": best["seed"] / best["serial"],
        "par4_vs_seed": best["seed"] / best["par4"],
        "par4_vs_serial": best["serial"] / best["par4"],
        "proc4_vs_seed": best["seed"] / best["proc4"],
        "proc4_vs_serial": best["serial"] / best["proc4"],
        "cache_on_vs_off": best["cache_off"] / best["serial"],
        "ckpt_vs_serial": best["ckpt"] / best["serial"],
    }
    committed_ratio = None
    if BENCH_PATH.exists():
        committed = json.loads(BENCH_PATH.read_text())
        committed_ratio = committed.get("speedup", {}) \
            .get("serial_vs_seed")
    report = {
        "workload": {
            "domain": "real_estate_1",
            "train_sources": 3,
            "match_sources": len(targets),
            "listings_per_source": N_LISTINGS,
            "instances_matched": instances,
            "rounds": ROUNDS,
        },
        "environment": {
            "cpu_count": CPU_COUNT,
        },
        "configs": {
            "seed": {"workers": 1, "backend": "seed-pipeline"},
            "cache_off": {"workers": 1, "backend": "serial"},
            "serial": {"workers": 1, "backend": "serial"},
            "par4": {"workers": 4, "backend": "thread"},
            "proc4": {"workers": 4, "backend": "process"},
            "ckpt": {"workers": 1, "backend": "serial",
                     "checkpoint": True},
        },
        "best_ms": {name: round(seconds * 1000.0, 2)
                    for name, seconds in best.items()},
        "speedup": {name: round(value, 2)
                    for name, value in speedups.items()},
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else 0.0,
        },
        "histograms": {
            name: {key: (round(value, 9)
                         if isinstance(value, float) else value)
                   for key, value in summary.items()}
            for name, summary in
            _collect_histograms(system, targets).items()
        },
        "determinism": {"tag_scores_identical": True},
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + json.dumps(report, indent=2))

    # Every bench run also lands in the run ledger, one series per
    # configuration, so `python -m repro ledger check` can gate bench
    # regressions across runs with the same trailing-window rule the
    # CLI applies to match runs.
    fingerprint = f"real_estate_1:{N_LISTINGS}x{len(targets)}"
    for name in configs:
        entry = run_ledger.build_entry(
            label=f"bench:matching:{name}",
            fingerprint=fingerprint,
            created=time.time(),
            config=dict(report["configs"][name], rounds=ROUNDS),
            host=run_ledger.host_info(
                backend=report["configs"][name]["backend"]),
            timings={"total": best[name], "rounds_total": total[name]},
            metrics={"instances": instances})
        run_ledger.append_entry(entry, LEDGER_PATH)

    assert speedups["serial_vs_seed"] >= MIN_SPEEDUP
    assert speedups["par4_vs_seed"] >= MIN_SPEEDUP
    # Parallel mode must stay at parity with serial (threads cannot
    # beat it — the kernels hold the GIL — but a real inversion like
    # the committed par4 < serial regression must fail loudly). Load
    # spikes hit best-of-rounds and total-of-rounds differently, so
    # parity on either metric passes; a genuine regression fails both.
    assert (best["par4"] <= best["serial"] * PAR_TOLERANCE
            or total["par4"] <= total["serial"] * PAR_TOLERANCE), \
        f"par4 trails serial beyond {PAR_TOLERANCE}x on both " \
        f"best ({best['par4']*1000:.1f}ms vs " \
        f"{best['serial']*1000:.1f}ms) and total " \
        f"({total['par4']*1000:.1f}ms vs {total['serial']*1000:.1f}ms)"
    # Durability must be effectively free: an armed checkpoint adds
    # fsync'd stage writes but no extra compute, so the checkpointed
    # serial run has to land within CKPT_TOLERANCE of plain serial on
    # best-of-rounds or total-of-rounds (load spikes hit the two
    # metrics differently; a real regression fails both).
    assert (best["ckpt"] <= best["serial"] * CKPT_TOLERANCE
            or total["ckpt"] <= total["serial"] * CKPT_TOLERANCE), \
        f"checkpointing costs more than {CKPT_TOLERANCE}x on both " \
        f"best ({best['ckpt']*1000:.1f}ms vs " \
        f"{best['serial']*1000:.1f}ms) and total " \
        f"({total['ckpt']*1000:.1f}ms vs {total['serial']*1000:.1f}ms)"
    # The process backend is the one path the GIL cannot serialise: on a
    # real 4-core host it must actually scale. Anywhere narrower, the
    # win is physically unavailable and the requirement degrades to
    # bounded IPC overhead.
    if CPU_COUNT >= 4:
        assert speedups["proc4_vs_serial"] >= MIN_PROC_SPEEDUP, \
            f"proc4_vs_serial {speedups['proc4_vs_serial']:.2f} below " \
            f"{MIN_PROC_SPEEDUP} on a {CPU_COUNT}-core host"
    else:
        assert (best["proc4"] <= best["serial"] * PROC_TOLERANCE
                or total["proc4"] <= total["serial"] * PROC_TOLERANCE), \
            f"proc4 overhead beyond {PROC_TOLERANCE}x serial on a " \
            f"{CPU_COUNT}-core host: best {best['proc4']*1000:.1f}ms " \
            f"vs {best['serial']*1000:.1f}ms, total " \
            f"{total['proc4']*1000:.1f}ms vs {total['serial']*1000:.1f}ms"
    # Throughput floor vs the committed bench, in host-drift-free
    # seed-relative terms.
    if committed_ratio:
        assert speedups["serial_vs_seed"] >= \
            committed_ratio * REGRESSION_TOLERANCE, \
            f"serial_vs_seed {speedups['serial_vs_seed']:.2f} fell " \
            f"below {REGRESSION_TOLERANCE}x of committed " \
            f"{committed_ratio:.2f}"
