"""E9 — §7 efficiency note: where matching time goes.

The paper reports that "LSD spends most of its time in the constraint
handler". Our A* implementation with the structure-score ordering and
top-k branching keeps the handler fast on these schemas, so the balance
shifts to learner prediction — this bench records the actual split so the
difference from the paper is documented rather than hidden.
"""

from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system, format_table

from .common import bench_settings, publish


def run_match():
    settings = bench_settings()
    domain = load_domain("real_estate_2", seed=0)
    system = build_system(
        domain, SystemConfig("complete"),
        max_instances_per_tag=settings.max_instances_per_tag)
    for source in domain.sources[:3]:
        system.add_training_source(
            source.schema, source.listings(settings.n_listings),
            source.mapping)
    system.train()
    test = domain.sources[3]
    return system.match(test.schema, test.listings(settings.n_listings))


def test_timing_breakdown(benchmark):
    result = benchmark.pedantic(run_match, rounds=1, iterations=1)
    total = sum(result.timings.values())
    rows = [
        [phase, f"{seconds:.3f}s",
         f"{seconds / total * 100:.1f}%" if total else "-"]
        for phase, seconds in result.timings.items()
    ]
    table = format_table(
        ["Matching phase", "Time", "Share"], rows,
        title="E9: matching-time breakdown (Real Estate II source)")
    publish("timing_breakdown", table)

    assert set(result.timings) == {"extract", "predict", "constraints"}
    assert total > 0.0
