"""Design-choice ablation (DESIGN.md §5): stacking vs uniform averaging.

The meta-learner's whole job is to out-perform naive averaging of the
base learners by learning per-(label, learner) trust weights from
cross-validated predictions. This bench compares the two combination
rules with everything else held fixed (all learners, constraints on).
"""

from repro.datasets import load_all_domains
from repro.evaluation import (SystemConfig, format_table, percent,
                              run_configuration)

from .common import bench_settings, publish


def run_ablation():
    settings = bench_settings()
    stacked_cfg = SystemConfig("stacked")
    uniform_cfg = SystemConfig("uniform", use_meta=False)
    rows = []
    means = {"stacked": [], "uniform": []}
    for domain in load_all_domains(seed=0):
        stacked = run_configuration(domain, stacked_cfg, settings)
        uniform = run_configuration(domain, uniform_cfg, settings)
        means["stacked"].append(stacked.mean_accuracy)
        means["uniform"].append(uniform.mean_accuracy)
        rows.append([domain.name, percent(uniform.mean_accuracy),
                     percent(stacked.mean_accuracy)])
    return rows, means


def test_stacking_vs_uniform(benchmark):
    rows, means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["Domain", "Uniform averaging", "Stacking (learned weights)"],
        rows, title="Ablation: meta-learner combination rule")
    publish("stacking_ablation", table)

    stacked_mean = sum(means["stacked"]) / len(means["stacked"])
    uniform_mean = sum(means["uniform"]) / len(means["uniform"])
    # Learned weights should not lose to naive averaging on average.
    assert stacked_mean >= uniform_mean - 0.02
