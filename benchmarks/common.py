"""Shared scaffolding for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures. The
paper's full methodology (300 listings/source, all 10 train/test splits,
3 data samples) takes hours on this pure-Python substrate, so benchmarks
default to a scaled-down setting that preserves the *shape* of every
result. Environment variables restore paper scale:

    LSD_BENCH_LISTINGS   listings extracted per source   (default 25)
    LSD_BENCH_TRIALS     data samples per experiment     (default 1)
    LSD_BENCH_SPLITS     train/test splits (max 10)      (default 2)
    LSD_BENCH_MAXINST    instance cap per tag            (default 25)

Each benchmark prints its table and also writes it to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.evaluation import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    return int(value)


def bench_settings() -> ExperimentSettings:
    """Experiment settings scaled by the LSD_BENCH_* environment."""
    splits = _env_int("LSD_BENCH_SPLITS", 2)
    return ExperimentSettings(
        n_listings=_env_int("LSD_BENCH_LISTINGS", 25),
        trials=_env_int("LSD_BENCH_TRIALS", 1),
        max_splits=None if splits >= 10 else splits,
        max_instances_per_tag=_env_int("LSD_BENCH_MAXINST", 25),
        seed=0)


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
