"""E13 — §8's related-work claim: learned matching beats fixed rules.

"Rule-based systems utilize only schema information in a hard-coded
fashion, whereas our approach exploits both schema and data information,
and does so automatically." This bench pits the TranScm/Artemis-style
rule-based baseline (no training, schema-only rules) against the complete
LSD system on every domain.

Expected shape: LSD wins on every domain, by a wide margin on domains
whose tag vocabularies diverge (abbreviated or source-specific names that
no fixed rule set anticipates).
"""

from repro.baselines import RuleBasedMatcher
from repro.datasets import load_all_domains
from repro.evaluation import (SystemConfig, format_table, percent,
                              run_configuration, train_test_splits)

from .common import bench_settings, publish


def run_comparison():
    settings = bench_settings()
    rows = []
    gaps = []
    for domain in load_all_domains(seed=0):
        matcher = RuleBasedMatcher(synonyms=domain.synonyms)
        rule_scores = []
        for __, test_sources in train_test_splits(
                domain.sources, settings.max_splits):
            for source in test_sources:
                mapping = matcher.match(domain.mediated_schema,
                                        source.schema)
                rule_scores.append(
                    mapping.accuracy_against(source.mapping))
        rule_mean = sum(rule_scores) / len(rule_scores)
        lsd = run_configuration(domain, SystemConfig("complete"),
                                settings)
        rows.append([domain.name, percent(rule_mean),
                     percent(lsd.mean_accuracy)])
        gaps.append(lsd.mean_accuracy - rule_mean)
    return rows, gaps


def test_rule_based_baseline(benchmark):
    rows, gaps = benchmark.pedantic(run_comparison, rounds=1,
                                    iterations=1)
    publish("rule_based_baseline", format_table(
        ["Domain", "Rule-based (schema-only)", "LSD (complete)"], rows,
        title="E13: rule-based baseline vs LSD"))

    # LSD must beat the fixed rules on average, and on most domains.
    assert sum(gaps) / len(gaps) > 0.05
    assert sum(1 for gap in gaps if gap > 0) >= len(gaps) - 1
