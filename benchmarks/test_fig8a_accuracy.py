"""E2 — Figure 8(a): average matching accuracy per configuration ladder.

For each domain, reports the accuracy of (1) the best single base learner
(excluding the XML learner), (2) base learners + meta-learner, (3) + the
domain-constraint handler, (4) + the XML learner — the complete system.

Expected shape (paper): each step is a non-trivial improvement; the
complete system lands in the 71-92% band, the best base learner in the
42-72% band; the XML-learner step is largest on Real Estate II.
"""

from repro.datasets import load_all_domains
from repro.evaluation import ladder_table, run_ladder

from .common import bench_settings, publish


def run_all():
    settings = bench_settings()
    return {
        domain.name: run_ladder(domain, settings)
        for domain in load_all_domains(seed=0)
    }


def test_fig8a(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    publish("fig8a_accuracy", ladder_table(results))

    for domain_name, ladder in results.items():
        best_base = ladder["best_base"].mean_accuracy
        complete = ladder["complete"].mean_accuracy
        # Shape: the complete system never loses to the best single base
        # learner (small tolerance for sampling noise at bench scale).
        assert complete >= best_base - 0.03, domain_name
        # The complete system is in (or above) the paper's quality band.
        assert complete >= 0.71, domain_name

    # The meta-learner and constraint handler must help overall.
    mean = lambda key: sum(l[key].mean_accuracy
                           for l in results.values()) / len(results)
    assert mean("complete") >= mean("meta") - 0.02
    assert mean("constraints") >= mean("meta") - 0.02
    assert mean("meta") >= mean("best_base") - 0.02
