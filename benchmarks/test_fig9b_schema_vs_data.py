"""E6 — Figure 9(b): learning from schema vs data information.

Compares (1) LSD restricted to schema information — the name matcher plus
schema-verifiable constraints, (2) LSD restricted to data information —
the content learners, XML learner and data-verifiable (column)
constraints, and (3) the complete system.

Expected shape (paper): "both schemas and data instances make important
contributions" — each restricted variant is clearly below the complete
system, and neither restricted variant dominates everywhere.
"""

from repro.datasets import load_all_domains
from repro.evaluation import run_information_study, study_table

from .common import bench_settings, publish


def run_all():
    settings = bench_settings()
    return {
        domain.name: run_information_study(domain, settings)
        for domain in load_all_domains(seed=0)
    }


def test_fig9b(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    publish("fig9b_schema_vs_data",
            study_table(results,
                        "Figure 9(b): schema vs data information"))

    domain_count = len(results)
    mean = lambda variant: sum(
        results[d][variant].mean_accuracy for d in results) / domain_count
    complete = mean("complete")
    assert complete >= mean("schema only") - 0.02
    assert complete >= mean("data only") - 0.02
    # Both information sources carry real signal on their own.
    assert mean("schema only") >= 0.3
    assert mean("data only") >= 0.3
