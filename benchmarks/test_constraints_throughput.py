"""Constraint-handler throughput: the incremental engine vs the pre-PR
handler.

Builds synthetic grouped schemas of 10-200 tags with a mixed constraint
load (frequency, nesting, contiguity, exclusivity, soft max-count,
proximity, plus assignment/exclusion feedback) and peaked random score
rows, then times three configurations per size:

``seed``
    A faithful re-implementation of the pre-PR ``find_mapping``: the
    same branch-and-bound over the same candidate order, but with
    ``extension_ok`` re-running full-assignment ``check_partial`` scans
    at every node and soft costs settled only at leaves.
``bnb``
    The incremental engine (push/pop evaluators, soft-cost-aware
    pruning) at one worker.
``par4``
    The incremental engine with the root split across 4 workers.

``astar`` also runs on the smaller sizes (it is the paper's formulation,
kept as a baseline; its frontier grows too fast to time on the big
schemas).

Configurations are interleaved round-robin and each reports its best
round. The benchmark asserts the incremental engine reaches the same
minimum cost as the seed handler at every size (assignments may differ
only on exact cost ties), that 1-worker and 4-worker runs return
byte-identical mappings, and that the incremental engine beats the seed
by at least 3x at 100 tags. Writes ``BENCH_constraints.json`` at the
repo root.

Environment knobs::

    LSD_BENCH_CONSTRAINTS_SIZES    comma-separated tag counts
                                   (default "10,25,50,100,200")
    LSD_BENCH_CONSTRAINTS_ROUNDS   timing rounds (default 3)
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.constraints import (AssignmentConstraint, ConstraintHandler,
                               ContiguityConstraint, ExclusionConstraint,
                               ExclusivityConstraint, FrequencyConstraint,
                               MatchContext, MaxCountSoftConstraint,
                               NestingConstraint, ProximityConstraint)
from repro.constraints.base import split_constraints
from repro.core import LabelSpace, Mapping, SourceSchema
from repro.core.parallel import ParallelExecutor

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_constraints.json"
SIZES = [int(s) for s in os.environ.get(
    "LSD_BENCH_CONSTRAINTS_SIZES", "10,25,50,100,200").split(",")]
ROUNDS = int(os.environ.get("LSD_BENCH_CONSTRAINTS_ROUNDS", "3"))
MIN_SPEEDUP = 3.0
ASTAR_MAX_SIZE = 50
MAX_EXPANSIONS = 500_000


# ---------------------------------------------------------------------------
# the pre-PR handler, reproduced for timing
# ---------------------------------------------------------------------------

def _seed_find_mapping(handler, scores, space, ctx, extra_constraints=()):
    """The pre-PR ``ConstraintHandler.find_mapping``: same candidate
    order, same heuristic, but full-scan ``check_partial`` at every node
    and soft costs only at leaves."""
    hard, soft = split_constraints(
        [*handler.constraints, *extra_constraints])
    tags = handler._tag_order(list(scores), ctx)
    if not tags:
        return Mapping({})
    candidate_labels = handler._candidates(tags, scores, space, hard)
    log_cost = {
        tag: {
            label: -handler.prob_weight * math.log(
                max(float(scores[tag][space.index_of(label)]),
                    handler.epsilon))
            for label in candidate_labels[tag]
        }
        for tag in tags
    }
    ordered_candidates = {
        tag: sorted(candidate_labels[tag],
                    key=lambda label: log_cost[tag][label])
        for tag in tags
    }
    suffix_best = [0.0] * (len(tags) + 1)
    for i in range(len(tags) - 1, -1, -1):
        suffix_best[i] = suffix_best[i + 1] + min(
            log_cost[tags[i]].values())

    by_label = {}
    always = []
    for constraint in hard:
        labels = constraint.relevant_labels()
        if labels is None:
            always.append(constraint)
        else:
            for label in labels:
                by_label.setdefault(label, []).append(constraint)

    assignment = {}
    best_cost = math.inf
    best = None
    expansions = 0

    def extension_ok(tag, label):
        for constraint in by_label.get(label, ()):
            if constraint.check_partial(assignment, ctx):
                return False
        for constraint in always:
            if constraint.check_partial(assignment, ctx):
                return False
        return True

    def constrained_greedy():
        try:
            for tag in tags:
                for label in ordered_candidates[tag]:
                    assignment[tag] = label
                    if extension_ok(tag, label):
                        break
                    del assignment[tag]
                else:
                    return None
            return dict(assignment)
        finally:
            assignment.clear()

    seed = constrained_greedy()
    if seed is not None:
        seed_cost = sum(log_cost[t][l] for t, l in seed.items())
        if not any(c.check_complete(seed, ctx) for c in hard):
            best = dict(seed)
            best_cost = seed_cost + handler._soft_cost(seed, ctx, soft)

    def dfs(level, cost_so_far):
        nonlocal best, best_cost, expansions
        if expansions >= handler.max_expansions:
            return
        if level == len(tags):
            total = cost_so_far + handler._soft_cost(assignment, ctx,
                                                     soft)
            if total < best_cost and not any(
                    c.check_complete(assignment, ctx) for c in hard):
                best_cost = total
                best = dict(assignment)
            return
        expansions += 1
        tag = tags[level]
        remaining = suffix_best[level + 1]
        for label in ordered_candidates[tag]:
            new_cost = cost_so_far + log_cost[tag][label]
            if new_cost + remaining >= best_cost:
                break
            assignment[tag] = label
            if extension_ok(tag, label):
                dfs(level + 1, new_cost)
            del assignment[tag]

    dfs(0, 0.0)
    if best is not None:
        return Mapping(best)
    return handler.greedy_mapping(scores, space)


# ---------------------------------------------------------------------------
# synthetic workload
# ---------------------------------------------------------------------------

def _make_instance(n_tags, seed=0):
    """A grouped schema of ``n_tags`` tags, one mediated label per tag
    plus distractor labels, peaked random score rows, and a mixed
    constraint load (dense 1-1 frequency constraints, structural
    constraints, soft costs, and user feedback)."""
    n_groups = max(1, n_tags // 5)
    n_leaves = n_tags - n_groups
    group_tags = [f"g{i}" for i in range(n_groups)]
    leaf_tags = [f"t{j}" for j in range(n_leaves)]
    members = {g: [] for g in range(n_groups)}
    for j in range(n_leaves):
        members[j % n_groups].append(leaf_tags[j])
    lines = ["<!ELEMENT listing (%s)>" % ", ".join(group_tags)]
    for g, tag in enumerate(group_tags):
        if members[g]:
            lines.append("<!ELEMENT %s (%s)>" % (tag,
                                                 ", ".join(members[g])))
        else:
            lines.append(f"<!ELEMENT {tag} (#PCDATA)>")
    lines.extend(f"<!ELEMENT {tag} (#PCDATA)>" for tag in leaf_tags)
    schema = SourceSchema("\n".join(lines), name=f"bench-{n_tags}")

    group_labels = [f"GL{i}" for i in range(n_groups)]
    leaf_labels = [f"LL{j}" for j in range(n_leaves)]
    # Distractor labels make the mediated vocabulary larger than the
    # source (realistic), so a tag forced off its best label by a 1-1
    # conflict has somewhere cheap to land instead of cascading the
    # conflict through every other tag's true label.
    distractors = [f"DL{d}" for d in range(max(2, n_tags // 4))]
    space = LabelSpace(group_labels + leaf_labels + distractors)
    truth = dict(zip(group_tags + leaf_tags,
                     group_labels + leaf_labels))

    rng = np.random.default_rng(seed)
    scores = {}
    for tag in group_tags + leaf_tags:
        row = rng.gamma(0.3, size=len(space)) + 1e-3
        row[space.index_of(truth[tag])] += 3.0 * row.max()
        scores[tag] = row / row.sum()

    # The paper's standard 1-1 mapping assumption: every label may be
    # used at most once (exactly once for the first leaf label).
    constraints = [FrequencyConstraint.at_most_one(label)
                   for label in group_labels + leaf_labels[1:]]
    constraints.append(FrequencyConstraint.exactly_one(leaf_labels[0]))
    for k in range(min(3, n_groups, n_leaves)):
        # Leaf t_k lives in group g_k (round-robin placement).
        constraints.append(NestingConstraint(group_labels[k],
                                             leaf_labels[k]))
    if n_leaves > n_groups:
        # t0 and t_{n_groups} are adjacent siblings inside g0.
        constraints.append(ContiguityConstraint(
            leaf_labels[0], leaf_labels[n_groups]))
        constraints.append(ProximityConstraint(
            leaf_labels[0], leaf_labels[n_groups]))
    if n_leaves > n_groups + 1:
        # Pairs with the exclusion feedback below: t2 is barred from
        # LL2, so LL2 goes unused and this exclusivity is satisfiable
        # without cascading reassignments through the 1-1 constraints.
        constraints.append(ExclusivityConstraint(
            leaf_labels[2], leaf_labels[n_groups + 1]))
    constraints.append(MaxCountSoftConstraint(leaf_labels[-1], 1))

    feedback = []
    if n_leaves > 3:
        feedback = [AssignmentConstraint(leaf_tags[1], leaf_labels[1]),
                    ExclusionConstraint(leaf_tags[2], leaf_labels[2])]
    ctx = MatchContext(schema)
    return scores, space, ctx, constraints, feedback


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _timed(fn, rounds):
    best = math.inf
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_constraints_throughput():
    report_sizes = {}
    speedup_at_100 = None

    for size in SIZES:
        scores, space, ctx, constraints, feedback = _make_instance(size)
        handler = ConstraintHandler(constraints,
                                    max_expansions=MAX_EXPANSIONS)
        par4 = ParallelExecutor(4)

        configs = {
            "seed": lambda: _seed_find_mapping(
                handler, scores, space, ctx, feedback),
            "bnb": lambda: handler.find_mapping(
                scores, space, ctx, feedback),
            "par4": lambda: handler.find_mapping(
                scores, space, ctx, feedback, executor=par4),
        }
        astar = None
        if size <= ASTAR_MAX_SIZE:
            astar = ConstraintHandler(constraints,
                                      max_expansions=MAX_EXPANSIONS,
                                      search="astar")
            configs["astar"] = lambda: astar.find_mapping(
                scores, space, ctx, feedback)

        for run in configs.values():  # warm-up round
            run()

        best = {}
        results = {}
        for name, run in configs.items():
            best[name], results[name] = _timed(run, ROUNDS)
        stats = dict(handler.last_stats)
        assert stats["nodes_expanded"] < MAX_EXPANSIONS, \
            "budget exhausted: determinism contract does not apply"

        # Optimality: the incremental engine reaches the seed handler's
        # minimum cost (mappings may differ only on exact ties).
        tags = list(scores)
        costs = {
            name: handler.mapping_cost(results[name], scores, space,
                                       ctx, extra_constraints=feedback)
            for name in results
        }
        for name in results:
            assert costs[name] == pytest.approx(costs["seed"],
                                                rel=1e-9), \
                f"{name} missed the optimum at {size} tags"

        # Determinism: 1 worker and 4 workers, byte-identical.
        assert {t: results["bnb"][t] for t in tags} == \
            {t: results["par4"][t] for t in tags}, \
            f"par4 diverged from serial at {size} tags"

        entry = {
            "best_ms": {name: round(seconds * 1000.0, 3)
                        for name, seconds in best.items()},
            "speedup_vs_seed": {
                name: round(best["seed"] / best[name], 2)
                for name in best if name != "seed"
            },
            "nodes_expanded": stats["nodes_expanded"],
            "prunes": {
                "bound": stats["prune_bound"],
                "hard": stats["prune_hard"],
                "soft_bound": stats["prune_soft_bound"],
            },
            "cost": round(costs["bnb"], 6),
            "workers_identical": True,
        }
        if astar is not None:
            entry["astar_nodes_expanded"] = \
                astar.last_stats["nodes_expanded"]
        report_sizes[str(size)] = entry
        if size == 100:
            speedup_at_100 = best["seed"] / best["bnb"]

    report = {
        "workload": {
            "sizes": SIZES,
            "rounds": ROUNDS,
            "constraints": "frequency + nesting + contiguity + "
                           "exclusivity + soft max-count + proximity + "
                           "assignment/exclusion feedback",
            "max_expansions": MAX_EXPANSIONS,
        },
        "sizes": report_sizes,
        "min_speedup_required_at_100": MIN_SPEEDUP,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print("\n" + json.dumps(report, indent=2))

    if speedup_at_100 is not None:
        assert speedup_at_100 >= MIN_SPEEDUP, (
            f"incremental engine only {speedup_at_100:.2f}x faster than "
            f"the seed handler at 100 tags (need {MIN_SPEEDUP}x)")
