"""E4 — Figure 8(c): accuracy vs data volume, Time Schedule.

Same sweep as Figure 8(b) on the Time Schedule domain; the paper notes
"experiments with other domains show the same phenomenon".
"""

import os

from repro.datasets import load_domain
from repro.evaluation import run_sensitivity, sensitivity_series

from .common import bench_settings, publish


def sweep_counts() -> tuple[int, ...]:
    raw = os.environ.get("LSD_BENCH_SWEEP", "5,10,20,50")
    return tuple(int(x) for x in raw.split(","))


def run_sweep():
    settings = bench_settings()
    domain = load_domain("time_schedule", seed=0)
    return run_sensitivity(domain, settings,
                           listing_counts=sweep_counts())


def test_fig8c(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    publish("fig8c_sensitivity_timeschedule",
            sensitivity_series(
                sweep, "Figure 8(c): accuracy vs listings, Time Schedule"))

    counts = sorted(sweep)
    complete = [sweep[c]["complete"].mean_accuracy for c in counts]
    assert complete[-1] >= complete[0] - 0.05
    total_climb = complete[-1] - complete[0]
    last_step = complete[-1] - complete[-2]
    assert last_step <= max(0.5 * total_climb, 0.05)
