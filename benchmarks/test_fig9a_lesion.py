"""E5 — Figure 9(a): lesion study.

Accuracy of LSD with each component removed (name matcher, Naive Bayes,
content matcher, constraint handler) versus the complete system.

Expected shape (paper): "each component contributes to the overall
performance, and there appears to be no clearly dominant component" —
every lesioned variant scores at or below the complete system on average.
"""

from repro.datasets import load_all_domains
from repro.evaluation import run_lesion_study, study_table

from .common import bench_settings, publish


def run_all():
    settings = bench_settings()
    return {
        domain.name: run_lesion_study(domain, settings)
        for domain in load_all_domains(seed=0)
    }


def test_fig9a(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    publish("fig9a_lesion",
            study_table(results, "Figure 9(a): lesion study"))

    variants = [v for v in next(iter(results.values()))
                if v != "complete"]
    domain_count = len(results)
    for variant in variants:
        lesioned = sum(results[d][variant].mean_accuracy
                       for d in results) / domain_count
        complete = sum(results[d]["complete"].mean_accuracy
                       for d in results) / domain_count
        # Averaged over domains, removing a component never helps by more
        # than bench-scale noise.
        assert lesioned <= complete + 0.03, variant
