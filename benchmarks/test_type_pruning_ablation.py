"""E11 — §7's pre-processed type constraints: quality and search effect.

"The most obvious solution is to incorporate some constraints within some
early phases to substantially reduce the search space. There are many
fairly simple constraints that can be pre-processed, such as constraints
on an element being textual or numeric."

Compares the complete system with and without the type-compatibility
pruner on Real Estate II. Expected shape: pruning never hurts accuracy
meaningfully (it is conservative) and can repair numeric/textual mixups.
"""

from repro.datasets import load_domain
from repro.evaluation import format_table, percent

from .common import bench_settings, publish


def run_ablation():
    from repro.evaluation import SystemConfig, build_system

    settings = bench_settings()
    domain = load_domain("real_estate_2", seed=0)
    outcomes = {}
    for pruned in (False, True):
        accuracies = []
        for test_index in (3, 4):
            system = build_system(
                domain, SystemConfig("complete"),
                max_instances_per_tag=settings.max_instances_per_tag)
            system.pruner = None
            if pruned:
                from repro.core import TypePruner
                system.pruner = TypePruner()
            for source in domain.sources[:3]:
                system.add_training_source(
                    source.schema,
                    source.listings(settings.n_listings),
                    source.mapping)
            system.train()
            test = domain.sources[test_index]
            result = system.match(test.schema,
                                  test.listings(settings.n_listings))
            accuracies.append(
                result.mapping.accuracy_against(test.mapping))
        outcomes[pruned] = sum(accuracies) / len(accuracies)
    return outcomes


def test_type_pruning(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["Configuration", "Real Estate II accuracy"],
        [["complete", percent(outcomes[False])],
         ["complete + type pruning (§7)", percent(outcomes[True])]],
        title="E11: pre-processed textual/numeric constraints")
    publish("type_pruning_ablation", table)

    # The conservative pruner must not hurt.
    assert outcomes[True] >= outcomes[False] - 0.02
