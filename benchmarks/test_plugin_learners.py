"""E15 — §8's plug-in claim: Semint/DELTA-style learners slot in.

"With LSD, both Semint and DELTA could be plugged in as new base
learners, and their predictions would be combined by the meta-learner."

Compares the complete system against the complete system plus the
statistics (Semint-style) and metadata (DELTA-style) learners. Expected
shape: the enlarged ensemble is at least as good — the stacking weights
neutralise unhelpful additions rather than being dragged down by them.
"""

from repro.datasets import load_domain
from repro.evaluation import (SystemConfig, build_system, format_table,
                              percent, train_test_splits)
from repro.learners import MetadataLearner, StatisticsLearner

from .common import bench_settings, publish


def run_comparison():
    settings = bench_settings()
    rows = []
    means = {}
    for domain_name in ("real_estate_1", "real_estate_2"):
        domain = load_domain(domain_name, seed=0)
        for with_plugins in (False, True):
            scores = []
            for train_sources, test_sources in train_test_splits(
                    domain.sources, settings.max_splits):
                system = build_system(
                    domain, SystemConfig("complete"),
                    max_instances_per_tag=settings.max_instances_per_tag)
                if with_plugins:
                    system.learners.extend(
                        [StatisticsLearner(), MetadataLearner()])
                for source in train_sources:
                    system.add_training_source(
                        source.schema,
                        source.listings(settings.n_listings),
                        source.mapping)
                system.train()
                for source in test_sources:
                    result = system.match(
                        source.schema,
                        source.listings(settings.n_listings))
                    scores.append(
                        result.mapping.accuracy_against(source.mapping))
            means[(domain_name, with_plugins)] = \
                sum(scores) / len(scores)
        rows.append([
            domain_name,
            percent(means[(domain_name, False)]),
            percent(means[(domain_name, True)]),
        ])
    return rows, means


def test_plugin_learners(benchmark):
    rows, means = benchmark.pedantic(run_comparison, rounds=1,
                                     iterations=1)
    publish("plugin_learners", format_table(
        ["Domain", "Complete (4 learners)",
         "+ statistics + metadata (6 learners)"], rows,
        title="E15: plugging in Semint/DELTA-style learners"))

    for domain_name in ("real_estate_1", "real_estate_2"):
        base = means[(domain_name, False)]
        extended = means[(domain_name, True)]
        # The meta-learner absorbs new learners without harm.
        assert extended >= base - 0.03, domain_name
