"""E7 — §6.3: user feedback needed to reach perfect matching.

Replays the paper's protocol on Time Schedule and Real Estate II: train
on three sources, match a fourth, review tags in structure-score order,
correct the first wrong label, re-run the constraint handler, repeat
until perfect; count the corrections.

Expected shape (paper): only a handful of corrections — ~3 for Time
Schedule (~17-tag schemas) and ~6.3 for Real Estate II (~38.6 tags) —
i.e. far fewer corrections than tags.
"""

from repro.datasets import load_domain
from repro.evaluation import feedback_table, run_feedback_study

from .common import bench_settings, publish


def run_study():
    settings = bench_settings()
    return [
        run_feedback_study(load_domain(name, seed=0), settings, runs=3)
        for name in ("time_schedule", "real_estate_2")
    ]


def test_sec63_feedback(benchmark):
    studies = benchmark.pedantic(run_study, rounds=1, iterations=1)
    publish("sec63_feedback", feedback_table(studies))

    for study in studies:
        # Every run actually reached a perfect matching.
        assert all(o.final_accuracy == 1.0 for o in study.outcomes)
        # And needed far fewer corrections than there are tags.
        assert study.corrections.mean <= 0.5 * study.tags.mean, \
            study.domain_name
