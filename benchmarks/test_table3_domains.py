"""E1 — Table 3: domains and data sources.

Regenerates the paper's Table 3 from the synthetic domains: mediated-DTD
size/structure, number of sources, listing volumes, source-DTD size
ranges and matchable-tag percentages.
"""

from repro.datasets import load_all_domains
from repro.evaluation import TABLE3_HEADERS, format_table, table3_row

from .common import publish


def build_table() -> str:
    domains = load_all_domains(seed=0)
    rows = [table3_row(domain) for domain in domains]
    return format_table(TABLE3_HEADERS, rows,
                        title="Table 3: domains and data sources")


def test_table3(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    publish("table3_domains", table)
    # Sanity: all four domains present with five sources each.
    assert table.count(" 5 ") >= 4 or "5" in table
    for title in ("Real Estate I", "Time Schedule", "Faculty Listings",
                  "Real Estate II"):
        assert title in table
