"""Course-catalog integration with and without domain constraints.

Uses the Time Schedule domain to show what the constraint handler buys:
the same trained learners are asked to match a registrar feed twice —
once taking each tag's argmax label, once running the A* constraint
handler with the domain's integrity constraints (keys, nesting,
contiguity, proximity). The constrained pass repairs tags the learners
get wrong, e.g. START-TIME/END-TIME swaps.

Run:  python examples/course_catalog.py
"""

from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system

LISTINGS = 25  # few enough listings that the learners make mistakes


def train(domain, use_constraints: bool):
    config = SystemConfig("demo", use_constraints=use_constraints)
    system = build_system(domain, config, max_instances_per_tag=LISTINGS)
    for source in domain.sources[:3]:
        system.add_training_source(source.schema,
                                   source.listings(LISTINGS),
                                   source.mapping)
    system.train()
    return system


def main() -> None:
    domain = load_domain("time_schedule", seed=0)
    test_source = domain.sources[3]
    print(f"Domain: {domain.title}; matching {test_source.name}")
    print("Domain constraints include:")
    for constraint in domain.constraints[:4]:
        print(f"  - {constraint.describe()}")
    print(f"  ... and {len(domain.constraints) - 4} more\n")

    unconstrained = train(domain, use_constraints=False)
    constrained = train(domain, use_constraints=True)

    listings = test_source.listings(LISTINGS)
    greedy = unconstrained.match(test_source.schema, listings)
    repaired = constrained.match(test_source.schema, listings)

    print(f"{'tag':<22} {'argmax only':<18} {'with constraints':<18} "
          f"truth")
    print("-" * 78)
    for tag in sorted(greedy.mapping.tags()):
        a = greedy.mapping[tag]
        b = repaired.mapping[tag]
        truth = test_source.mapping.get(tag)
        flag = " *" if a != b else ""
        print(f"{tag:<22} {a:<18} {b:<18} {truth}{flag}")

    truth = test_source.mapping
    print(f"\nargmax accuracy:      "
          f"{greedy.mapping.accuracy_against(truth):.1%}")
    print(f"constrained accuracy: "
          f"{repaired.mapping.accuracy_against(truth):.1%}")
    violations = constrained.handler.violations(
        greedy.mapping, repaired.context)
    if violations:
        print("\nConstraints the argmax mapping violated:")
        for constraint in violations:
            print(f"  - {constraint.describe()}")


if __name__ == "__main__":
    main()
