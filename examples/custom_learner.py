"""Extending LSD with a custom base learner.

The paper stresses that LSD's multi-strategy architecture "is extensible
to additional learners" — new learners slot in next to the built-in ones
and the stacking meta-learner automatically figures out, per label, how
much to trust them. This example adds a ZIP-code recognizer built from
scratch (a `BaseLearner` subclass) to the Real Estate I system and prints
the weight the meta-learner assigns to it for the ZIP label versus the
other labels.

Run:  python examples/custom_learner.py
"""

from typing import Sequence

import numpy as np

from repro.core.instance import ElementInstance
from repro.core.labels import LabelSpace
from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system
from repro.learners import BaseLearner


class ZipCodeLearner(BaseLearner):
    """Scores ZIP high for values shaped like 5-digit US zip codes.

    A deliberately tiny learner: no training beyond remembering the label
    space, a pure-precision prediction rule, abstention elsewhere —
    the same pattern as the paper's county-name recognizer.
    """

    name = "zip_recognizer"

    def __init__(self, label: str = "ZIP",
                 confidence: float = 0.9) -> None:
        super().__init__()
        self.label = label
        self.confidence = confidence

    def clone(self) -> "ZipCodeLearner":
        return ZipCodeLearner(self.label, self.confidence)

    def fit(self, instances: Sequence[ElementInstance],
            labels: Sequence[str], space: LabelSpace) -> None:
        self.space = space

    def predict_scores(self,
                       instances: Sequence[ElementInstance]) -> np.ndarray:
        space = self._require_fitted()
        scores = self._uniform(len(instances))
        if self.label not in space:
            return scores
        column = space.index_of(self.label)
        spread = (1.0 - self.confidence) / max(len(space) - 1, 1)
        for row, instance in enumerate(instances):
            value = instance.text.strip()
            if len(value) == 5 and value.isdigit():
                scores[row, :] = spread
                scores[row, column] = self.confidence
        return scores


def main() -> None:
    domain = load_domain("real_estate_1", seed=0)
    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=60)
    # Plug the custom learner in alongside the default set.
    system.learners.append(ZipCodeLearner())

    for source in domain.sources[:3]:
        system.add_training_source(source.schema, source.listings(60),
                                   source.mapping)
    system.train()

    print("Meta-learner weights for the zip recognizer, per label:")
    table = system.weight_table()
    interesting = ["ZIP", "PRICE", "BEDS", "DESCRIPTION", "AGENT-PHONE"]
    for label in interesting:
        weight = table[label]["zip_recognizer"]
        print(f"  {label:<12} {weight:6.3f}")
    zip_weight = table["ZIP"]["zip_recognizer"]
    others = [table[l]["zip_recognizer"] for l in interesting[1:]]
    print("\nThe regression trusts the recognizer"
          f" {zip_weight:.2f} on ZIP vs at most {max(others):.2f} "
          "elsewhere — extensibility with zero manual tuning.")

    test = domain.sources[4]
    result = system.match(test.schema, test.listings(60))
    zip_tags = result.mapping.tags_for("ZIP")
    print(f"\nOn unseen source {test.name}, ZIP is assigned to: "
          f"{', '.join(zip_tags) or '(none)'} "
          f"(truth: {', '.join(test.mapping.tags_for('ZIP'))})")


if __name__ == "__main__":
    main()
