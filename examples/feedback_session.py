"""Interactive user feedback (§4.3 / §6.3 of the paper).

Trains LSD on three Real Estate II sources, matches a fourth, and then
replays the paper's feedback protocol: review tags in decreasing
structure-score order, correct the first wrong label, let the constraint
handler re-run, repeat until the matching is perfect. Each correction can
repair *other* tags for free because the handler re-optimises globally.

Run:  python examples/feedback_session.py
"""

from repro.core import FeedbackSession
from repro.core.labels import OTHER
from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system

LISTINGS = 60


def main() -> None:
    domain = load_domain("real_estate_2", seed=0)
    test_source = domain.sources[3]

    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=LISTINGS)
    for source in domain.sources[:3]:
        system.add_training_source(source.schema,
                                   source.listings(LISTINGS),
                                   source.mapping)
    system.train()

    session = FeedbackSession(system, test_source.schema,
                              test_source.listings(LISTINGS))
    truth = test_source.mapping
    accuracy = session.mapping.accuracy_against(truth,
                                                matchable_only=False)
    total = len(test_source.schema.tags)
    print(f"Source {test_source.name}: {total} tags, initial accuracy "
          f"{accuracy:.1%}\n")

    round_number = 0
    while True:
        wrong = next(
            (tag for tag in session.review_order()
             if session.mapping[tag] != truth.get(tag, OTHER)), None)
        if wrong is None:
            break
        round_number += 1
        before = session.mapping.accuracy_against(truth,
                                                  matchable_only=False)
        correct_label = truth.get(wrong, OTHER)
        print(f"round {round_number}: user corrects {wrong!r}: "
              f"{session.mapping[wrong]} -> {correct_label}")
        session.assert_match(wrong, correct_label)
        after = session.mapping.accuracy_against(truth,
                                                 matchable_only=False)
        repaired = round(max(after - before, 0.0) * total) - 1
        if repaired > 0:
            print(f"         ... and the constraint handler repaired "
                  f"{repaired} more tag(s) for free")

    print(f"\nPerfect matching reached after {session.corrections} "
          f"correction(s) on a {total}-tag schema")
    print("(the paper reports ~6.3 corrections for ~38.6-tag Real Estate "
          "II schemas)")


if __name__ == "__main__":
    main()
