"""Quickstart: the paper's running example, end to end.

Trains LSD on two user-mapped real-estate sources (realestate.com and
homeseekers.com, Figure 5 of the paper) and asks it to match the schema
of a third source it has never seen (greathomes.com, Figure 6).

Run:  python examples/quickstart.py
"""

from repro.core import LSDSystem
from repro.learners import default_learners
from repro.xmlio import parse_fragments

MEDIATED_SCHEMA = """
<!ELEMENT LISTING (ADDRESS, LISTED-PRICE, DESCRIPTION, CONTACT-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT LISTED-PRICE (#PCDATA)>
<!ELEMENT DESCRIPTION (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
"""

REALESTATE_SCHEMA = """
<!ELEMENT house (location, listed-price, comments, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT listed-price (#PCDATA)>
<!ELEMENT comments (#PCDATA)>
<!ELEMENT contact (name, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
"""

REALESTATE_LISTINGS = parse_fragments("""
<house><location>Miami, FL</location><listed-price>$ 250,000</listed-price>
  <comments>Fantastic house, great location</comments>
  <contact><name>Joe Brown</name><phone>(305) 729 0831</phone></contact>
</house>
<house><location>Boston, MA</location><listed-price>$ 110,000</listed-price>
  <comments>Great location, close to the river</comments>
  <contact><name>Kate Richardson</name><phone>(617) 253 1429</phone></contact>
</house>
<house><location>Seattle, WA</location><listed-price>$ 370,000</listed-price>
  <comments>Beautiful view, spacious yard</comments>
  <contact><name>Mike Smith</name><phone>(206) 523 4719</phone></contact>
</house>
""")

REALESTATE_MAPPING = {
    "location": "ADDRESS", "listed-price": "LISTED-PRICE",
    "comments": "DESCRIPTION", "contact": "CONTACT-INFO",
    "name": "AGENT-NAME", "phone": "AGENT-PHONE",
}

HOMESEEKERS_SCHEMA = """
<!ELEMENT entry (house-addr, price, detailed-desc, agent-info)>
<!ELEMENT house-addr (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT detailed-desc (#PCDATA)>
<!ELEMENT agent-info (realtor, telephone)>
<!ELEMENT realtor (#PCDATA)>
<!ELEMENT telephone (#PCDATA)>
"""

HOMESEEKERS_LISTINGS = parse_fragments("""
<entry><house-addr>Portland, OR</house-addr><price>$ 180,000</price>
  <detailed-desc>Great yard, fantastic schools nearby</detailed-desc>
  <agent-info><realtor>Jane Kendall</realtor>
  <telephone>(515) 273 4312</telephone></agent-info></entry>
<entry><house-addr>Denver, CO</house-addr><price>$ 95,000</price>
  <detailed-desc>Charming cottage with a beautiful garden</detailed-desc>
  <agent-info><realtor>Ann Lee</realtor>
  <telephone>(303) 745 1120</telephone></agent-info></entry>
<entry><house-addr>Austin, TX</house-addr><price>$ 420,000</price>
  <detailed-desc>Spacious house close to downtown</detailed-desc>
  <agent-info><realtor>Matt Richardson</realtor>
  <telephone>(512) 330 2255</telephone></agent-info></entry>
""")

HOMESEEKERS_MAPPING = {
    "house-addr": "ADDRESS", "price": "LISTED-PRICE",
    "detailed-desc": "DESCRIPTION", "agent-info": "CONTACT-INFO",
    "realtor": "AGENT-NAME", "telephone": "AGENT-PHONE",
}

# The new, unmapped source LSD must figure out by itself.
GREATHOMES_SCHEMA = """
<!ELEMENT home (area, amount, extra-info, person)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT extra-info (#PCDATA)>
<!ELEMENT person (agent-name, work-phone)>
<!ELEMENT agent-name (#PCDATA)>
<!ELEMENT work-phone (#PCDATA)>
"""

GREATHOMES_LISTINGS = parse_fragments("""
<home><area>Orlando, FL</area><amount>$ 350,000</amount>
  <extra-info>Spacious house near the beach</extra-info>
  <person><agent-name>Mike Smith</agent-name>
  <work-phone>(315) 237 4379</work-phone></person></home>
<home><area>Kent, WA</area><amount>$ 230,000</amount>
  <extra-info>Close to the highway, great value</extra-info>
  <person><agent-name>Jane Kendall</agent-name>
  <work-phone>(415) 273 1234</work-phone></person></home>
<home><area>Portland, OR</area><amount>$ 440,000</amount>
  <extra-info>Great location, fantastic deal</extra-info>
  <person><agent-name>Matt Richardson</agent-name>
  <work-phone>(515) 237 4244</work-phone></person></home>
""")


def main() -> None:
    # 1. Build LSD over the mediated schema with the paper's learner set.
    lsd = LSDSystem(MEDIATED_SCHEMA, default_learners())

    # 2. Training phase: the user maps a couple of sources by hand.
    lsd.add_training_source(REALESTATE_SCHEMA, REALESTATE_LISTINGS,
                            REALESTATE_MAPPING)
    lsd.add_training_source(HOMESEEKERS_SCHEMA, HOMESEEKERS_LISTINGS,
                            HOMESEEKERS_MAPPING)
    lsd.train()

    print("Learned meta-learner weights (label x learner):")
    for label, weights in lsd.weight_table().items():
        rendered = ", ".join(f"{name}={value:.2f}"
                             for name, value in weights.items())
        print(f"  {label:<13} {rendered}")

    # 3. Matching phase: propose mappings for the unseen source.
    result = lsd.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)

    print("\nProposed semantic mappings for greathomes.com:")
    for tag in sorted(result.mapping.tags()):
        candidates = ", ".join(f"{label} ({score:.2f})"
                               for label, score in
                               result.top_candidates(tag, 2))
        print(f"  {tag:<12} => {result.mapping[tag]:<13} "
              f"[candidates: {candidates}]")


if __name__ == "__main__":
    main()
