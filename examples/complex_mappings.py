"""Detecting complex (non 1-1) mappings — the paper's §9 future work.

The paper's own example: a source advertises ``num-baths`` while the
mediated schema splits ``FULL-BATHS`` and ``HALF-BATHS``. LSD's 1-1
matcher must send num-baths to OTHER; the composite detector then notices
that num-baths = baths-full + baths-half on every listing and proposes
the complex mapping.

Run:  python examples/complex_mappings.py
"""

from repro.core import (Mapping, SourceSchema, extract_columns,
                        find_composite_mappings)
from repro.xmlio import parse_fragments

SOURCE = SourceSchema("""
<!ELEMENT house (address, baths-full, baths-half, num-baths, price)>
<!ELEMENT address (#PCDATA)>
<!ELEMENT baths-full (#PCDATA)>
<!ELEMENT baths-half (#PCDATA)>
<!ELEMENT num-baths (#PCDATA)>
<!ELEMENT price (#PCDATA)>
""", name="baths-example.com")

LISTINGS = parse_fragments("""
<house><address>12 Pine St</address><baths-full>2</baths-full>
  <baths-half>1</baths-half><num-baths>3</num-baths>
  <price>250000</price></house>
<house><address>9 Oak Ave</address><baths-full>1</baths-full>
  <baths-half>0</baths-half><num-baths>1</num-baths>
  <price>180000</price></house>
<house><address>4 Elm Rd</address><baths-full>3</baths-full>
  <baths-half>2</baths-half><num-baths>5</num-baths>
  <price>420000</price></house>
<house><address>7 Cedar Ct</address><baths-full>2</baths-full>
  <baths-half>2</baths-half><num-baths>4</num-baths>
  <price>310000</price></house>
<house><address>1 Lake Dr</address><baths-full>1</baths-full>
  <baths-half>1</baths-half><num-baths>2</num-baths>
  <price>150000</price></house>
<house><address>30 Main St</address><baths-full>4</baths-full>
  <baths-half>0</baths-half><num-baths>4</num-baths>
  <price>500000</price></house>
""")

# What LSD's 1-1 phase produced: num-baths had no 1-1 counterpart.
ONE_TO_ONE = Mapping({
    "address": "ADDRESS",
    "baths-full": "FULL-BATHS",
    "baths-half": "HALF-BATHS",
    "num-baths": "OTHER",
    "price": "PRICE",
})


def main() -> None:
    print("1-1 mappings from LSD:")
    for tag, label in sorted(ONE_TO_ONE.items()):
        print(f"  {tag:<12} => {label}")

    columns = extract_columns(SOURCE, LISTINGS)
    composites = find_composite_mappings(columns, ONE_TO_ONE,
                                         min_listings=5)

    print("\nComplex mappings detected for the leftover tags:")
    if not composites:
        print("  (none)")
    for composite in composites:
        print(f"  {composite.describe()}")
    print("\nThis resolves the paper's §2 example: "
          "\"num-baths maps to half-baths + full-baths\".")


if __name__ == "__main__":
    main()
