"""Real-estate data integration: the paper's motivating scenario.

Builds the full Real Estate I domain (five heterogeneous house-listing
sources), trains LSD on three of them, and matches the remaining two —
printing per-tag predictions, the constraint handler's final mappings,
and the mistakes (if any) against the known ground truth.

Run:  python examples/real_estate_integration.py
"""

from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system

TRAIN_COUNT = 3
LISTINGS_PER_SOURCE = 100


def main() -> None:
    domain = load_domain("real_estate_1", seed=0)
    print(f"Domain: {domain.title}")
    print(f"Mediated schema: {len(domain.mediated_schema.tags)} tags, "
          f"labels = {', '.join(domain.mediated_schema.tags[:6])}, ...")
    print(f"Constraints: {len(domain.constraints)} "
          f"(e.g. {domain.constraints[0].describe()})")

    train_sources = domain.sources[:TRAIN_COUNT]
    test_sources = domain.sources[TRAIN_COUNT:]

    # The complete LSD configuration: all base learners + XML learner +
    # domain recognizers + stacking meta-learner + constraint handler.
    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=LISTINGS_PER_SOURCE)
    for source in train_sources:
        system.add_training_source(source.schema,
                                   source.listings(LISTINGS_PER_SOURCE),
                                   source.mapping)
        print(f"  trained on {source.name} "
              f"({len(source.schema.tags)} tags)")
    system.train()

    for source in test_sources:
        print(f"\nMatching new source: {source.name}")
        result = system.match(source.schema,
                              source.listings(LISTINGS_PER_SOURCE))
        for tag in sorted(result.mapping.tags()):
            label = result.mapping[tag]
            confidence = result.prediction_for(tag).score(label)
            truth = source.mapping.get(tag)
            marker = "" if label == truth else f"   <-- expected {truth}"
            print(f"  {tag:<16} => {label:<16} "
                  f"(score {confidence:.2f}){marker}")
        accuracy = result.mapping.accuracy_against(source.mapping)
        print(f"  matching accuracy (matchable tags): {accuracy:.1%}")
        print(f"  time: extract {result.timings['extract']:.2f}s, "
              f"predict {result.timings['predict']:.2f}s, "
              f"constraints {result.timings['constraints']:.2f}s")


if __name__ == "__main__":
    main()
