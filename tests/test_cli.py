"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    """A generated Real Estate I domain on disk."""
    out = tmp_path_factory.mktemp("data")
    code = main(["generate", "--domain", "real_estate_1",
                 "--out", str(out), "--listings", "20"])
    assert code == 0
    return out


@pytest.fixture(scope="module")
def model(generated, tmp_path_factory):
    """A model trained via the CLI on three generated sources."""
    model_path = tmp_path_factory.mktemp("models") / "model.lsd"
    code = main([
        "train",
        "--mediated", str(generated / "mediated.dtd"),
        "--constraints", str(generated / "constraints.txt"),
        "--train",
        str(generated / "homeseekers.com"),
        str(generated / "yahoo-homes.com"),
        str(generated / "realestate.com"),
        "--model", str(model_path),
        "--max-instances", "20",
    ])
    assert code == 0
    return model_path


class TestGenerate:
    def test_layout(self, generated):
        assert (generated / "mediated.dtd").exists()
        assert (generated / "constraints.txt").exists()
        source = generated / "homeseekers.com"
        for name in ("schema.dtd", "listings.xml", "mapping.txt"):
            assert (source / name).exists()

    def test_mapping_file_format(self, generated):
        text = (generated / "homeseekers.com" / "mapping.txt").read_text()
        assert "location = ADDRESS" in text

    def test_listings_parse(self, generated):
        from repro.xmlio import parse_fragments
        listings = parse_fragments(
            (generated / "nwrealty.com" / "listings.xml").read_text())
        assert len(listings) == 20

    def test_constraints_parse(self, generated):
        from repro.constraints import parse_constraints
        constraints = parse_constraints(
            (generated / "constraints.txt").read_text())
        assert len(constraints) > 10


class TestTrainAndMatch:
    def test_model_file_written(self, model):
        assert model.exists() and model.stat().st_size > 0

    def test_match_new_source(self, generated, model, tmp_path,
                              capsys):
        out_file = tmp_path / "proposed.txt"
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--out", str(out_file),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "=>" in printed
        text = out_file.read_text()
        assert "listed-price = PRICE" in text

    def test_match_with_feedback(self, generated, model, capsys):
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--feedback", "city=OTHER",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "city                 => OTHER" in printed

    def test_match_with_workers_and_profile(self, generated, model,
                                            capsys):
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--workers", "4", "--profile",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "=>" in printed
        # The profile table lists the pipeline stages and counters.
        assert "predict" in printed
        assert "instances" in printed

    def test_bad_feedback_syntax(self, generated, model, capsys):
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--feedback", "city",
        ])
        assert code == 2
        assert "TAG=LABEL" in capsys.readouterr().err


class TestObservabilityOutputs:
    def _match(self, generated, model, tmp_path, workers, suffix):
        trace = tmp_path / f"trace{suffix}.jsonl"
        report = tmp_path / f"report{suffix}.json"
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--workers", str(workers),
            "--trace-out", str(trace),
            "--report-out", str(report),
        ])
        assert code == 0
        return trace, report

    def test_trace_tree_and_report(self, generated, model, tmp_path):
        from repro.observability import read_jsonl, validate_file
        from repro.observability.metrics import M_PREDICT_LATENCY

        trace_path, report_path = self._match(
            generated, model, tmp_path, workers=1, suffix="")

        spans = read_jsonl(trace_path)
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.span_id for root in roots] == ["run"]
        # Parent links all resolve; learner and constraint-search
        # children are present under the match subtree.
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids
        assert any(span.name.startswith("learner.") for span in spans)
        assert "run/match/constrain/search" in ids
        # The root covers (almost) all of the traced work.
        children = sum(span.elapsed for span in spans
                       if span.parent_id == "run")
        assert children <= roots[0].elapsed * 1.001

        report = validate_file(report_path)
        schema_tags = 19  # greathomes.com in Real Estate I
        assert report["dataset"]["tags"] == schema_tags
        assert len(report["quality"]) == schema_tags
        assert {record["tag"] for record in report["quality"]} == \
            set(report["mapping"])
        latency = report["metrics"]["histograms"][M_PREDICT_LATENCY]
        assert latency["count"] > 0
        assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"]

    def test_structure_deterministic_across_workers(self, generated,
                                                    model, tmp_path):
        import json

        from repro.observability import read_jsonl

        trace1, report1 = self._match(generated, model, tmp_path,
                                      workers=1, suffix="1")
        trace4, report4 = self._match(generated, model, tmp_path,
                                      workers=4, suffix="4")
        ids1 = sorted(s.span_id for s in read_jsonl(trace1))
        ids4 = sorted(s.span_id for s in read_jsonl(trace4))
        assert ids1 == ids4

        r1 = json.loads(report1.read_text())
        r4 = json.loads(report4.read_text())
        assert r1["mapping"] == r4["mapping"]
        assert r1["quality"] == r4["quality"]
        assert r1["dataset"] == r4["dataset"]

    def test_train_trace_out(self, generated, tmp_path):
        from repro.observability import read_jsonl

        trace_path = tmp_path / "train_trace.jsonl"
        code = main([
            "train",
            "--mediated", str(generated / "mediated.dtd"),
            "--train", str(generated / "homeseekers.com"),
            "--model", str(tmp_path / "traced.lsd"),
            "--max-instances", "10",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        names = {span.name for span in read_jsonl(trace_path)}
        assert {"run", "train", "build", "cv", "fit_meta"} <= names
        assert any(name.startswith("fit.") for name in names)
        assert any(name.startswith("fold.") for name in names)


class TestErrors:
    def test_missing_source_dir(self, generated, tmp_path, capsys):
        code = main([
            "train", "--mediated", str(generated / "mediated.dtd"),
            "--train", str(tmp_path / "nope"),
            "--model", str(tmp_path / "m.lsd"),
        ])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_bad_dtd(self, generated, tmp_path, capsys):
        bad = tmp_path / "bad.dtd"
        bad.write_text("<!ELEMENT broken")
        code = main([
            "train", "--mediated", str(bad),
            "--train", str(generated / "homeseekers.com"),
            "--model", str(tmp_path / "m.lsd"),
        ])
        assert code == 2

    def test_bad_mapping_file(self, generated, tmp_path, capsys):
        source = tmp_path / "src"
        source.mkdir()
        (source / "schema.dtd").write_text(
            (generated / "homeseekers.com" / "schema.dtd").read_text())
        (source / "listings.xml").write_text(
            (generated / "homeseekers.com" / "listings.xml").read_text())
        (source / "mapping.txt").write_text("just some words\n")
        code = main([
            "train", "--mediated", str(generated / "mediated.dtd"),
            "--train", str(source),
            "--model", str(tmp_path / "m.lsd"),
        ])
        assert code == 2
        assert "tag = LABEL" in capsys.readouterr().err


class TestEvaluate:
    def test_ladder_runs(self, capsys):
        code = main(["evaluate", "--domain", "faculty",
                     "--experiment", "ladder",
                     "--listings", "15", "--splits", "1"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "faculty" in printed and "%" in printed

    def test_feedback_experiment_runs(self, capsys):
        code = main(["evaluate", "--domain", "faculty",
                     "--experiment", "feedback", "--listings", "15"])
        assert code == 0
        assert "corrections" in capsys.readouterr().out


class TestArtifactFaultDegradation:
    """Regression for the ``flow-fault-unhandled`` finding on the
    ``artifact.write`` site: before the fix, no transitive caller of
    ``atomic_write_text`` handled ``FaultInjected``, so an injected
    artifact-write fault crashed an otherwise-successful run with a raw
    traceback. The CLI must absorb the failure, warn, and record it in
    the degradation report instead."""

    def test_report_write_fault_degrades_not_crashes(
            self, generated, model, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "faults": [{"site": "artifact.write", "action": "raise"}]}))
        report = tmp_path / "report.json"
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--report-out", str(report),
            "--fault-plan", str(plan),
        ])
        assert code == 0
        captured = capsys.readouterr()
        # The match result still printed; the artifact loss is a
        # warning, not a crash, and no half-written report remains.
        assert "=>" in captured.out
        assert "warning: report not written" in captured.err
        assert not report.exists()

    def test_emit_artifact_records_the_loss(self, tmp_path, capsys):
        from repro.cli import _emit_artifact
        from repro.resilience import ResiliencePolicy

        policy = ResiliencePolicy()

        def boom():
            raise OSError("disk full")

        assert not _emit_artifact("ledger", tmp_path / "ledger.jsonl",
                                  policy.report, boom)
        assert "warning: ledger not written" in capsys.readouterr().err
        assert policy.report.degraded
        assert policy.report.as_dict()["artifact_failures"] == [
            {"artifact": "ledger", "cause": "disk full"}]
