"""Tests for the constraint declaration mini-language."""

import pytest

from repro.constraints import (ConstraintSyntaxError, ContiguityConstraint,
                               ExclusivityConstraint, FrequencyConstraint,
                               FunctionalDependencyConstraint,
                               KeyConstraint, MaxCountSoftConstraint,
                               NestingConstraint, ProximityConstraint,
                               parse_constraints)


class TestParsing:
    def test_frequency_at_most(self):
        [c] = parse_constraints("frequency PRICE at-most 1")
        assert isinstance(c, FrequencyConstraint)
        assert c.label == "PRICE" and c.max_count == 1 and c.min_count == 0

    def test_frequency_exactly(self):
        [c] = parse_constraints("frequency HOUSE exactly 1")
        assert c.min_count == 1 and c.max_count == 1

    def test_frequency_at_least(self):
        [c] = parse_constraints("frequency ADDRESS at-least 1")
        assert c.min_count == 1 and c.max_count is None

    def test_frequency_between(self):
        [c] = parse_constraints("frequency ADDRESS between 1 2")
        assert c.min_count == 1 and c.max_count == 2

    def test_nesting_contains(self):
        [c] = parse_constraints("nesting AGENT-INFO contains AGENT-NAME")
        assert isinstance(c, NestingConstraint)
        assert not c.forbidden
        assert c.outer_label == "AGENT-INFO"

    def test_nesting_excludes(self):
        [c] = parse_constraints("nesting AGENT-INFO excludes PRICE")
        assert c.forbidden

    def test_contiguous(self):
        [c] = parse_constraints("contiguous BATHS BEDS")
        assert isinstance(c, ContiguityConstraint)

    def test_exclusive(self):
        [c] = parse_constraints("exclusive COURSE-CREDIT SECTION-CREDIT")
        assert isinstance(c, ExclusivityConstraint)

    def test_key(self):
        [c] = parse_constraints("key HOUSE-ID")
        assert isinstance(c, KeyConstraint)
        assert c.label == "HOUSE-ID"

    def test_fd(self):
        [c] = parse_constraints("fd CITY FIRM-NAME -> FIRM-ADDRESS")
        assert isinstance(c, FunctionalDependencyConstraint)
        assert c.determinants == ["CITY", "FIRM-NAME"]
        assert c.dependent == "FIRM-ADDRESS"

    def test_soft_max(self):
        [c] = parse_constraints("soft-max DESCRIPTION 3")
        assert isinstance(c, MaxCountSoftConstraint)
        assert c.max_count == 3

    def test_proximity(self):
        [c] = parse_constraints("proximity AGENT-NAME AGENT-PHONE")
        assert isinstance(c, ProximityConstraint)

    def test_multi_line_with_comments(self):
        text = """
        # Real-estate constraints
        frequency PRICE exactly 1   # one price per listing
        key HOUSE-ID

        nesting CONTACT-INFO contains AGENT-PHONE
        """
        constraints = parse_constraints(text)
        assert len(constraints) == 3

    def test_empty_text(self):
        assert parse_constraints("") == []
        assert parse_constraints("# only a comment\n") == []


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "frequency PRICE",
        "frequency PRICE sometimes 1",
        "frequency PRICE at-most many",
        "frequency PRICE between 1",
        "nesting A within B",
        "nesting A contains",
        "contiguous A",
        "exclusive A B C",
        "key",
        "fd A B C",
        "fd -> X",
        "fd A -> X Y",
        "soft-max DESCRIPTION",
        "soft-max DESCRIPTION lots",
        "proximity A",
        "wibble A B",
    ])
    def test_bad_lines_raise(self, bad):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraints(bad)

    def test_error_reports_line_number(self):
        with pytest.raises(ConstraintSyntaxError) as excinfo:
            parse_constraints("key HOUSE-ID\nwibble X")
        assert excinfo.value.line_number == 2
