"""Tests for labels, predictions, mappings, schemas, and the converter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (LabelSpace, Mapping, MediatedSchema, OTHER,
                        Prediction, PredictionConverter, SourceSchema)

MEDIATED = """
<!ELEMENT LISTING (ADDRESS, LISTED-PRICE, CONTACT-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT LISTED-PRICE (#PCDATA)>
<!ELEMENT CONTACT-INFO (FNAME, LNAME, AGENT-PHONE)>
<!ELEMENT FNAME (#PCDATA)>
<!ELEMENT LNAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
"""


class TestLabelSpace:
    def test_other_always_present(self):
        space = LabelSpace(["A", "B"])
        assert OTHER in space
        assert len(space) == 3

    def test_indexing_roundtrip(self):
        space = LabelSpace(["A", "B"])
        for label in space:
            assert space.label_at(space.index_of(label)) == label

    def test_duplicates_collapsed(self):
        assert len(LabelSpace(["A", "A", "B"])) == 3

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            LabelSpace(["A"]).index_of("Z")

    def test_real_labels_exclude_other(self):
        assert LabelSpace(["A", "B"]).real_labels() == ("A", "B")

    def test_equality_and_hash(self):
        assert LabelSpace(["A"]) == LabelSpace(["A"])
        assert hash(LabelSpace(["A"])) == hash(LabelSpace(["A"]))
        assert LabelSpace(["A"]) != LabelSpace(["B"])


class TestPrediction:
    SPACE = LabelSpace(["ADDRESS", "DESCRIPTION", "AGENT-PHONE"])

    def test_normalisation(self):
        p = Prediction(self.SPACE, np.array([2.0, 1.0, 1.0, 0.0]))
        assert p.score("ADDRESS") == pytest.approx(0.5)
        assert sum(p.as_dict().values()) == pytest.approx(1.0)

    def test_paper_example(self):
        # The name matcher's example prediction from §2.2.
        p = Prediction.from_dict(self.SPACE, {
            "ADDRESS": 0.1, "DESCRIPTION": 0.2, "AGENT-PHONE": 0.7})
        assert p.top() == "AGENT-PHONE"
        assert p.top_k(2)[1][0] == "DESCRIPTION"

    def test_negative_scores_clamped(self):
        p = Prediction(self.SPACE, np.array([-1.0, 1.0, 0.0, 0.0]))
        assert p.score("ADDRESS") == 0.0

    def test_all_zero_is_uniform(self):
        p = Prediction(self.SPACE, np.zeros(4))
        assert p.score("ADDRESS") == pytest.approx(0.25)

    def test_uniform_and_certain(self):
        assert Prediction.uniform(self.SPACE).margin() == pytest.approx(0)
        certain = Prediction.certain(self.SPACE, "ADDRESS")
        assert certain.score("ADDRESS") == 1.0
        assert certain.margin() == pytest.approx(1.0)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            Prediction(self.SPACE, np.zeros(2))

    @given(st.lists(st.floats(0, 100), min_size=4, max_size=4))
    @settings(max_examples=50)
    def test_scores_always_distribution(self, raw):
        p = Prediction(self.SPACE, np.array(raw))
        assert np.isclose(p.scores.sum(), 1.0)
        assert np.all(p.scores >= 0)


class TestMapping:
    def test_basic_lookup(self):
        m = Mapping({"location": "ADDRESS", "comments": "DESCRIPTION"})
        assert m["location"] == "ADDRESS"
        assert m.get("missing") is None
        assert "location" in m and len(m) == 2

    def test_matchable_excludes_other(self):
        m = Mapping({"a": "X", "b": OTHER})
        assert m.matchable_tags() == ("a",)

    def test_accuracy_matchable_only(self):
        truth = Mapping({"a": "X", "b": "Y", "c": OTHER})
        predicted = Mapping({"a": "X", "b": "Z", "c": "X"})
        assert predicted.accuracy_against(truth) == pytest.approx(0.5)
        assert predicted.accuracy_against(
            truth, matchable_only=False) == pytest.approx(1 / 3)

    def test_accuracy_empty_truth(self):
        assert Mapping({}).accuracy_against(Mapping({})) == 1.0

    def test_differences(self):
        truth = Mapping({"a": "X", "b": "Y"})
        predicted = Mapping({"a": "X", "b": "Z"})
        assert predicted.differences(truth) == [("b", "Z", "Y")]

    def test_with_assignment_immutable(self):
        m = Mapping({"a": "X"})
        m2 = m.with_assignment("b", "Y")
        assert "b" not in m and m2["b"] == "Y"

    def test_tags_for(self):
        m = Mapping({"a": "X", "b": "X", "c": "Y"})
        assert set(m.tags_for("X")) == {"a", "b"}

    def test_hash_and_eq(self):
        assert Mapping({"a": "X"}) == Mapping({"a": "X"})
        assert hash(Mapping({"a": "X"})) == hash(Mapping({"a": "X"}))


class TestSchemas:
    def test_mediated_label_space(self):
        schema = MediatedSchema(MEDIATED)
        space = schema.label_space()
        assert "ADDRESS" in space and "LISTING" not in space
        assert OTHER in space

    def test_tags_exclude_root(self):
        schema = MediatedSchema(MEDIATED)
        assert "LISTING" not in schema.tags
        assert len(schema.tags) == 6

    def test_non_leaf_tags(self):
        schema = MediatedSchema(MEDIATED)
        assert schema.non_leaf_tags == ("CONTACT-INFO",)

    def test_path_to(self):
        schema = MediatedSchema(MEDIATED)
        assert schema.path_to("AGENT-PHONE") == ("LISTING", "CONTACT-INFO")
        assert schema.path_to("ADDRESS") == ("LISTING",)

    def test_path_to_unreachable(self):
        schema = SourceSchema(
            "<!ELEMENT a (b)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>")
        assert schema.path_to("c") == ()

    def test_siblings(self):
        schema = MediatedSchema(MEDIATED)
        assert schema.siblings("FNAME", "AGENT-PHONE")
        assert not schema.siblings("FNAME", "ADDRESS")

    def test_sibling_order(self):
        schema = MediatedSchema(MEDIATED)
        assert schema.sibling_order("CONTACT-INFO") == [
            "FNAME", "LNAME", "AGENT-PHONE"]

    def test_source_schema_from_text(self):
        schema = SourceSchema(
            "<!ELEMENT l (a)><!ELEMENT a (#PCDATA)>", name="s1")
        assert schema.name == "s1"
        assert schema.tags == ("a",)


class TestPredictionConverter:
    def test_mean_strategy(self):
        converter = PredictionConverter()
        scores = np.array([[0.8, 0.2], [0.6, 0.4], [0.7, 0.3]])
        assert np.allclose(converter.convert(scores), [0.7, 0.3])

    def test_paper_worked_example(self):
        """§3.2: averaging the three 'area' instance predictions gives
        <ADDRESS:0.7, DESCRIPTION:0.163, AGENT-PHONE:0.137>."""
        converter = PredictionConverter()
        scores = np.array([
            [0.7, 0.2, 0.1],
            [0.5, 0.2, 0.3],
            [0.9, 0.09, 0.01],
        ])
        out = converter.convert(scores)
        assert np.allclose(out, [0.7, 0.163, 0.137], atol=1e-3)

    def test_median_and_max(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9], [0.8, 0.2]])
        assert np.allclose(
            PredictionConverter("median").convert(scores), [0.8, 0.2])
        out = PredictionConverter("max").convert(scores)
        assert out[0] == pytest.approx(0.5)

    def test_empty_column_uniform(self):
        out = PredictionConverter().convert(np.zeros((0, 4)))
        assert np.allclose(out, 0.25)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            PredictionConverter("mode")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            PredictionConverter().convert(np.zeros(3))
