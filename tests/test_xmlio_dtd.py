"""Unit tests for the DTD parser and structural queries."""

import pytest

from repro.xmlio import (Choice, DTDSyntaxError, NameRef, PCData, Sequence,
                         parse_dtd)

PAPER_SOURCE_DTD = """
<!ELEMENT house-listing (location?, price, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT contact (name, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
"""

PAPER_MEDIATED_DTD = """
<!ELEMENT LISTING (ADDRESS, LISTED-PRICE, CONTACT-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT LISTED-PRICE (#PCDATA)>
<!ELEMENT CONTACT-INFO (FNAME, LNAME, AGENT-PHONE)>
<!ELEMENT FNAME (#PCDATA)>
<!ELEMENT LNAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
"""


class TestParsing:
    def test_paper_source_dtd(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert set(dtd.tag_names()) == {
            "house-listing", "location", "price", "contact", "name",
            "phone"}
        model = dtd["house-listing"].model
        assert isinstance(model, Sequence)
        assert isinstance(model.items[0], NameRef)
        assert model.items[0].name == "location"
        assert model.items[0].occurrence == "?"

    def test_pcdata_leaf(self):
        dtd = parse_dtd("<!ELEMENT price (#PCDATA)>")
        assert isinstance(dtd["price"].model, PCData)
        assert dtd["price"].is_leaf

    def test_choice_model(self):
        dtd = parse_dtd("<!ELEMENT x (a | b | c)>")
        model = dtd["x"].model
        assert isinstance(model, Choice)
        assert [i.name for i in model.items] == ["a", "b", "c"]

    def test_occurrence_flags(self):
        dtd = parse_dtd("<!ELEMENT x (a?, b*, c+, d)>")
        flags = [i.occurrence for i in dtd["x"].model.items]
        assert flags == ["?", "*", "+", ""]

    def test_nested_groups(self):
        dtd = parse_dtd("<!ELEMENT x ((a, b) | c)*>")
        model = dtd["x"].model
        assert isinstance(model, Choice)
        assert model.occurrence == "*"
        assert isinstance(model.items[0], Sequence)

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT d (#PCDATA | em | strong)*>")
        model = dtd["d"].model
        assert isinstance(model, Choice)
        assert model.occurrence == "*"
        assert model.child_names() == {"em", "strong"}

    def test_empty_and_any(self):
        dtd = parse_dtd("<!ELEMENT a EMPTY><!ELEMENT b ANY>")
        assert repr(dtd["a"].model) == "EMPTY"
        assert repr(dtd["b"].model) == "ANY"

    def test_comments_in_dtd(self):
        dtd = parse_dtd("<!-- note --><!ELEMENT a (#PCDATA)>")
        assert "a" in dtd

    def test_attlist(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)>"
            '<!ATTLIST a id CDATA #REQUIRED status (open|sold) "open">')
        attrs = dtd["a"].attributes
        assert attrs["id"].default == "#REQUIRED"
        assert attrs["status"].type == "(open|sold)"
        assert attrs["status"].default == "open"

    def test_attlist_before_element(self):
        dtd = parse_dtd(
            "<!ATTLIST a id CDATA #IMPLIED>"
            "<!ELEMENT a (#PCDATA)>")
        assert "id" in dtd["a"].attributes
        assert isinstance(dtd["a"].model, PCData)

    @pytest.mark.parametrize("bad", [
        "<!ELEMENT x (a,>",
        "<!ELEMENT x (a | b, c)>",
        "<!ELEMENT x >",
        "<!BOGUS x (a)>",
    ])
    def test_malformed_dtd_raises(self, bad):
        with pytest.raises(DTDSyntaxError):
            parse_dtd(bad)


class TestStructuralQueries:
    def test_root_inference(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert dtd.root_name() == "house-listing"

    def test_leaf_and_non_leaf(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert set(dtd.non_leaf_names()) == {"house-listing", "contact"}
        assert set(dtd.leaf_names()) == {"location", "price", "name",
                                         "phone"}

    def test_children_and_parents(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert dtd.children_of("contact") == {"name", "phone"}
        assert dtd.parents_of("phone") == {"contact"}

    def test_depth(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert dtd.depth() == 3  # house-listing -> contact -> phone

    def test_depth_mediated(self):
        dtd = parse_dtd(PAPER_MEDIATED_DTD)
        assert dtd.depth() == 3

    def test_nested_within(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert dtd.nested_within("house-listing", "phone")
        assert dtd.nested_within("contact", "name")
        assert not dtd.nested_within("contact", "price")

    def test_descendant_count(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        assert dtd.descendant_count("house-listing") == 5
        assert dtd.descendant_count("contact") == 2
        assert dtd.descendant_count("price") == 0

    def test_edges(self):
        dtd = parse_dtd(PAPER_SOURCE_DTD)
        edges = set(dtd.edges())
        assert ("contact", "phone") in edges
        assert ("house-listing", "price") in edges

    def test_depth_with_cycle_terminates(self):
        dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b (a?)>")
        assert dtd.depth() >= 2

    def test_root_of_empty_dtd_raises(self):
        with pytest.raises(DTDSyntaxError):
            parse_dtd("").root_name()
