"""Tests for the string-similarity metrics and the edit-distance
name matcher."""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners import EditDistanceNameMatcher
from repro.text import (best_token_alignment, jaro, jaro_winkler,
                        levenshtein, levenshtein_similarity)

from .helpers import make_instance, space_of, training_set

words = st.text(alphabet=string.ascii_lowercase, max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("abc", "", 3),
        ("", "xy", 2),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("phone", "phne", 1),
        ("desc", "description", 7),
    ])
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(words, words)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words)
    @settings(max_examples=40)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    def test_similarity_normalised(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_pair(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    @given(words, words)
    @settings(max_examples=80)
    def test_bounded_and_symmetric(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(b, a))

    def test_winkler_prefix_bonus(self):
        plain = jaro("telephone", "telegraph")
        winkler = jaro_winkler("telephone", "telegraph")
        assert winkler > plain

    def test_winkler_truncation_strength(self):
        # The schema-name case: truncations score high.
        assert jaro_winkler("tel", "telephone") > 0.7
        assert jaro_winkler("desc", "description") > 0.7

    @given(words, words)
    @settings(max_examples=60)
    def test_winkler_bounded(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestTokenAlignment:
    def test_identical_lists(self):
        assert best_token_alignment(["agent", "phone"],
                                    ["agent", "phone"]) == 1.0

    def test_order_insensitive(self):
        forward = best_token_alignment(["agent", "phone"],
                                       ["phone", "agent"])
        assert forward == pytest.approx(1.0)

    def test_partial(self):
        score = best_token_alignment(["agt"], ["agent", "phone"])
        assert 0.5 < score < 1.0

    def test_empty(self):
        assert best_token_alignment([], ["x"]) == 0.0


class TestEditDistanceNameMatcher:
    SPACE = space_of("AGENT-PHONE", "DESCRIPTION", "ADDRESS")

    def fitted(self):
        learner = EditDistanceNameMatcher()
        instances, labels = training_set([
            (make_instance("telephone"), "AGENT-PHONE"),
            (make_instance("agent-phone"), "AGENT-PHONE"),
            (make_instance("description"), "DESCRIPTION"),
            (make_instance("remarks"), "DESCRIPTION"),
            (make_instance("address"), "ADDRESS"),
            (make_instance("location"), "ADDRESS"),
        ])
        learner.fit(instances, labels, self.SPACE)
        return learner

    def test_truncated_name_matches(self):
        """§7's weakness of token matching: 'tel' has no shared token
        with 'telephone' but shares almost all its characters."""
        learner = self.fitted()
        [p] = learner.predict([make_instance("tel")])
        assert p.top() == "AGENT-PHONE"

    def test_abbreviation_matches(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("desc")])
        assert p.top() == "DESCRIPTION"

    def test_misspelling_matches(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("adress")])
        assert p.top() == "ADDRESS"

    def test_unrelated_name_uniform_ish(self):
        learner = self.fitted()
        scores = learner.predict_scores([make_instance("zzz-qqq")])
        assert scores.max() < 0.8

    def test_rows_are_distributions(self):
        learner = self.fitted()
        scores = learner.predict_scores(
            [make_instance("tel"), make_instance("x")])
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_registered(self):
        from repro.learners import registry
        assert "edit_distance" in registry

    def test_clone(self):
        assert EditDistanceNameMatcher(sharpness=3.0).clone().sharpness \
            == 3.0
