"""Isolated coverage for the shared AST helpers in
:mod:`repro.analysis.astutil`."""

import ast
import textwrap

from repro.analysis.astutil import (call_arg_string, chain_parts,
                                    contains_raise, dotted,
                                    names_imported_from, root_name)


def _expr(code: str) -> ast.AST:
    return ast.parse(code, mode="eval").body


class TestDotted:
    def test_plain_name(self):
        assert dotted(_expr("a")) == "a"

    def test_attribute_chain(self):
        assert dotted(_expr("a.b.c")) == "a.b.c"

    def test_subscript_breaks_the_chain(self):
        assert dotted(_expr("a[0].c")) is None

    def test_call_is_not_a_name(self):
        assert dotted(_expr("f()")) is None


class TestRootName:
    def test_plain_name(self):
        assert root_name(_expr("a")) == "a"

    def test_attribute_and_subscript_chain(self):
        assert root_name(_expr("a.b[0].c")) == "a"

    def test_call_base_has_no_root(self):
        assert root_name(_expr("f().b")) is None


class TestChainParts:
    def test_mixed_chain_lists_components_in_order(self):
        assert chain_parts(_expr("a.b[0].c")) == ["a", "b", "c"]

    def test_plain_name(self):
        assert chain_parts(_expr("a")) == ["a"]

    def test_call_base_yields_attrs_only(self):
        assert chain_parts(_expr("f().b.c")) == ["b", "c"]


class TestCallArgString:
    def test_first_string_literal(self):
        assert call_arg_string(_expr('f("site", 1)')) == "site"

    def test_positional_index(self):
        assert call_arg_string(_expr('f(1, "two")'), 1) == "two"

    def test_non_literal_returns_none(self):
        assert call_arg_string(_expr("f(name)")) is None

    def test_missing_argument_returns_none(self):
        assert call_arg_string(_expr("f()")) is None

    def test_non_string_literal_returns_none(self):
        assert call_arg_string(_expr("f(1)")) is None


class TestNamesImportedFrom:
    def test_plain_and_aliased_imports(self):
        tree = ast.parse(textwrap.dedent("""\
            from random import random, seed as reseed
            from os import urandom
            """))
        assert names_imported_from(tree, "random") == {
            "random": "random", "reseed": "seed"}
        assert names_imported_from(tree, "os") == {"urandom": "urandom"}
        assert names_imported_from(tree, "time") == {}

    def test_nested_imports_are_seen(self):
        tree = ast.parse(textwrap.dedent("""\
            def late():
                from random import choice
                return choice
            """))
        assert names_imported_from(tree, "random") == {
            "choice": "choice"}


class TestContainsRaise:
    def test_raise_anywhere_under_the_node(self):
        tree = ast.parse(textwrap.dedent("""\
            def f():
                if True:
                    raise ValueError("boom")
            """))
        assert contains_raise(tree.body[0])

    def test_no_raise(self):
        tree = ast.parse("def f():\n    return 1\n")
        assert not contains_raise(tree.body[0])
