"""Tests for the seeded fault injector, deadlines and degradation log."""

import random

import pytest

from repro.resilience import (Deadline, DegradationReport, FaultInjected,
                              FaultPlan, FaultSpec, LearnerTimeout,
                              SITE_CATALOGUE, SITE_EXECUTOR_TASK,
                              SITE_INGEST_CHUNK, SITE_LEARNER_PREDICT,
                              call_with_timeout, corrupt_text)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="no.such.site")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site=SITE_LEARNER_PREDICT, action="explode")

    def test_unknown_corruption_style_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption style"):
            FaultSpec(site=SITE_INGEST_CHUNK, action="corrupt",
                      message="nonsense")

    def test_schedule_fields_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultSpec(site=SITE_LEARNER_PREDICT, at_hit=0)

    def test_round_trips_through_as_dict(self):
        spec = FaultSpec(site=SITE_EXECUTOR_TASK, key="3", at_hit=2,
                         every=4, count=5, message="boom")
        assert FaultSpec(**spec.as_dict()) == spec


class TestFaultPlanParsing:
    def test_from_json_happy_path(self):
        plan = FaultPlan.from_json(
            '{"seed": 7, "faults": [{"site": "learner.predict", '
            '"key": "name_matcher"}]}')
        assert plan.seed == 7
        assert plan.specs[0].key == "name_matcher"

    def test_bad_json_raises_value_error(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seeds": 1})

    def test_unknown_spec_field_named_with_index(self):
        with pytest.raises(ValueError, match=r"faults\[0\]"):
            FaultPlan.from_dict(
                {"faults": [{"site": "learner.predict", "when": 3}]})


class TestFiring:
    def plan(self, **kwargs):
        return FaultPlan(specs=(FaultSpec(**kwargs),))

    def test_raise_action_carries_site_and_key(self):
        plan = self.plan(site=SITE_LEARNER_PREDICT, key="nb")
        with pytest.raises(FaultInjected) as excinfo:
            plan.fire(SITE_LEARNER_PREDICT, "nb")
        assert excinfo.value.site == SITE_LEARNER_PREDICT
        assert excinfo.value.key == "nb"

    def test_key_scoping(self):
        plan = self.plan(site=SITE_LEARNER_PREDICT, key="nb")
        plan.fire(SITE_LEARNER_PREDICT, "whirl")  # other key: no fire
        with pytest.raises(FaultInjected):
            plan.fire(SITE_LEARNER_PREDICT, "nb")

    def test_schedule_at_every_count(self):
        plan = self.plan(site=SITE_EXECUTOR_TASK, key="0", at_hit=2,
                         every=3, count=2)
        fired = []
        for hit in range(1, 12):
            try:
                plan.fire(SITE_EXECUTOR_TASK, "0")
            except FaultInjected:
                fired.append(hit)
        assert fired == [2, 5]  # at hit 2, again 3 later, then spent

    def test_site_wide_spec_counts_across_keys(self):
        plan = self.plan(site=SITE_EXECUTOR_TASK, at_hit=3)
        plan.fire(SITE_EXECUTOR_TASK, "0")
        plan.fire(SITE_EXECUTOR_TASK, "1")
        with pytest.raises(FaultInjected):
            plan.fire(SITE_EXECUTOR_TASK, "2")

    def test_records_are_sorted_not_arrival_ordered(self):
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_EXECUTOR_TASK, key="5"),
            FaultSpec(site=SITE_EXECUTOR_TASK, key="1"),
        ))
        for key in ("5", "1"):
            with pytest.raises(FaultInjected):
                plan.fire(SITE_EXECUTOR_TASK, key)
        assert [r["key"] for r in plan.records()] == ["1", "5"]


class TestCorruption:
    def test_corrupt_is_deterministic_per_seed_site_key(self):
        def run():
            plan = FaultPlan(specs=(FaultSpec(
                site=SITE_INGEST_CHUNK, action="corrupt"),), seed=3)
            return plan.corrupt(SITE_INGEST_CHUNK, "0",
                                "<a><b>some text here</b></a>")
        assert run() == run()

    def test_corrupted_text_differs_and_keeps_start_tag(self):
        plan = FaultPlan(specs=(FaultSpec(
            site=SITE_INGEST_CHUNK, action="corrupt"),), seed=3)
        text = "<a><b>some text here</b></a>"
        damaged, style = plan.corrupt(SITE_INGEST_CHUNK, "0", text)
        assert style is not None
        assert damaged != text
        assert damaged.startswith("<a>")

    def test_every_style_damages_or_preserves_sanely(self):
        text = "<listing><price>100</price></listing>"
        for style in ("drop-close", "bogus-entity", "stray-markup",
                      "truncate-tail"):
            damaged = corrupt_text(text, style, random.Random(1))
            assert damaged.startswith("<listing>")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption style"):
            corrupt_text("<a/>", "melt", random.Random(0))


class TestDeadline:
    def test_inert_deadline_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.active
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_zero_deadline_is_immediately_expired(self):
        deadline = Deadline(0.0)
        assert deadline.active
        assert deadline.expired()

    def test_generous_deadline_not_expired(self):
        assert not Deadline(3600.0).expired()


class TestCallWithTimeout:
    def test_no_timeout_is_a_direct_call(self):
        assert call_with_timeout(lambda x: x + 1, (41,)) == 42

    def test_errors_propagate_unchanged(self):
        with pytest.raises(KeyError, match="boom"):
            call_with_timeout(
                lambda: (_ for _ in ()).throw(KeyError("boom")), (),
                timeout=5.0)

    def test_slow_call_raises_learner_timeout(self):
        import time
        with pytest.raises(LearnerTimeout):
            call_with_timeout(time.sleep, (2.0,), timeout=0.05)


class TestDegradationReport:
    def test_fresh_report_is_not_degraded(self):
        report = DegradationReport()
        assert not report.degraded
        assert report.as_dict() == {}

    def test_quarantined_learners_deduplicated_in_order(self):
        report = DegradationReport()
        report.quarantine("nb", "predict", "boom", "ValueError")
        report.quarantine("whirl", "predict", "boom", "ValueError")
        report.quarantine("nb", "predict", "again", "ValueError")
        assert report.quarantined_learners == ["nb", "whirl"]
        assert report.degraded

    def test_retries_sorted_in_as_dict(self):
        report = DegradationReport()
        report.retried("predict", 3, 2, True)
        report.retried("predict", 1, 2, True)
        entries = report.as_dict()["retries"]
        assert [entry["task"] for entry in entries] == [1, 3]

    def test_every_site_is_catalogued(self):
        from repro.resilience import (SITE_EXECUTOR_POOL,
                                      SITE_LEARNER_FIT,
                                      SITE_SEARCH_ROOT)
        for site in (SITE_INGEST_CHUNK, SITE_LEARNER_FIT,
                     SITE_LEARNER_PREDICT, SITE_EXECUTOR_TASK,
                     SITE_EXECUTOR_POOL, SITE_SEARCH_ROOT):
            assert site in SITE_CATALOGUE
