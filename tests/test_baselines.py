"""Tests for the rule-based baseline matcher."""

import pytest

from repro.baselines import RuleBasedMatcher
from repro.core import MediatedSchema, OTHER, SourceSchema
from repro.datasets import load_domain
from repro.text import SynonymDictionary

MEDIATED = MediatedSchema("""
<!ELEMENT LISTING (ADDRESS, LISTED-PRICE, CONTACT-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT LISTED-PRICE (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
""")


class TestRules:
    def test_exact_name_match(self):
        source = SourceSchema(
            "<!ELEMENT l (listed-price)><!ELEMENT listed-price (#PCDATA)>")
        mapping = RuleBasedMatcher().match(MEDIATED, source)
        assert mapping["listed-price"] == "LISTED-PRICE"

    def test_synonym_match(self):
        source = SourceSchema(
            "<!ELEMENT l (location)><!ELEMENT location (#PCDATA)>")
        mapping = RuleBasedMatcher().match(MEDIATED, source)
        assert mapping["location"] == "ADDRESS"

    def test_token_overlap(self):
        source = SourceSchema(
            "<!ELEMENT l (agent-work-phone)>"
            "<!ELEMENT agent-work-phone (#PCDATA)>")
        mapping = RuleBasedMatcher().match(MEDIATED, source)
        assert mapping["agent-work-phone"] == "AGENT-PHONE"

    def test_vacuous_name_goes_other(self):
        source = SourceSchema(
            "<!ELEMENT l (item)><!ELEMENT item (#PCDATA)>")
        mapping = RuleBasedMatcher().match(MEDIATED, source)
        assert mapping["item"] == OTHER

    def test_one_to_one_enforced(self):
        source = SourceSchema(
            "<!ELEMENT l (phone, agent-phone)>"
            "<!ELEMENT phone (#PCDATA)><!ELEMENT agent-phone (#PCDATA)>")
        mapping = RuleBasedMatcher().match(MEDIATED, source)
        labels = [label for __, label in mapping.items()
                  if label != OTHER]
        assert len(labels) == len(set(labels))
        # The better (exact) name wins AGENT-PHONE.
        assert mapping["agent-phone"] == "AGENT-PHONE"

    def test_structure_preference(self):
        # A non-leaf tag cannot take a leaf label through structure score
        # alone; contact group should map to CONTACT-INFO.
        source = SourceSchema(
            "<!ELEMENT l (contact)><!ELEMENT contact (n)>"
            "<!ELEMENT n (#PCDATA)>")
        matcher = RuleBasedMatcher(threshold=0.2)
        mapping = matcher.match(MEDIATED, source)
        assert mapping["contact"] == "CONTACT-INFO"

    def test_custom_synonyms(self):
        matcher = RuleBasedMatcher(
            synonyms=SynonymDictionary([("domicile", "address")]))
        source = SourceSchema(
            "<!ELEMENT l (domicile)><!ELEMENT domicile (#PCDATA)>")
        assert matcher.match(MEDIATED, source)["domicile"] == "ADDRESS"


class TestAgainstDomains:
    @pytest.mark.parametrize("domain_name", ["real_estate_1", "faculty"])
    def test_baseline_is_worse_than_trivial_truth(self, domain_name):
        """The rule-based matcher gets a meaningful share right but is
        clearly imperfect — the gap LSD's learning closes."""
        domain = load_domain(domain_name, seed=0)
        matcher = RuleBasedMatcher(synonyms=domain.synonyms)
        accuracies = []
        for source in domain.sources:
            mapping = matcher.match(domain.mediated_schema,
                                    source.schema)
            accuracies.append(
                mapping.accuracy_against(source.mapping))
        mean = sum(accuracies) / len(accuracies)
        assert 0.15 <= mean <= 0.95, f"mean accuracy {mean:.2f}"
