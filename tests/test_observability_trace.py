"""Tests for the hierarchical trace collector."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.observability import (NULL_TRACE, Span, TraceCollector,
                                 iter_tree, read_jsonl)


class TestSpanIds:
    def test_root_and_nested_ids_are_paths(self):
        trace = TraceCollector()
        with trace.span("match"):
            with trace.span("predict"):
                with trace.span("combine"):
                    pass
        ids = [span.span_id for span in trace.spans]
        assert ids == ["match", "match/predict",
                       "match/predict/combine"]

    def test_repeated_names_get_suffixes(self):
        trace = TraceCollector()
        with trace.span("root"):
            with trace.span("pass"):
                pass
            with trace.span("pass"):
                pass
        ids = [span.span_id for span in trace.spans]
        assert "root/pass" in ids and "root/pass#1" in ids

    def test_sibling_trees_are_independent(self):
        trace = TraceCollector()
        with trace.span("a"):
            with trace.span("x"):
                pass
        with trace.span("b"):
            with trace.span("x"):
                pass
        ids = {span.span_id for span in trace.spans}
        assert {"a", "a/x", "b", "b/x"} <= ids

    def test_reserved_characters_rejected(self):
        trace = TraceCollector()
        with pytest.raises(ValueError):
            trace.span("has/slash")  # lsd: ignore[span-unclosed]
        with pytest.raises(ValueError):
            trace.span("has#hash")  # lsd: ignore[span-unclosed]

    def test_ids_are_structure_deterministic(self):
        def build() -> list[str]:
            trace = TraceCollector()
            with trace.span("run"):
                for name in ("alpha", "beta"):
                    with trace.span(name):
                        pass
            return [span.span_id for span in trace.spans]

        assert build() == build()


class TestSpanRecords:
    def test_attributes_and_set_attribute(self):
        trace = TraceCollector()
        with trace.span("work", items=3) as span:
            span.set_attribute("result", "ok")
        recorded = trace.spans[0]
        assert recorded.attributes == {"items": 3, "result": "ok"}

    def test_exception_marks_error(self):
        trace = TraceCollector()
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("nope")
        assert trace.spans[0].attributes["error"] == "RuntimeError"

    def test_timestamps_and_elapsed(self):
        trace = TraceCollector()
        with trace.span("work"):
            sum(range(1000))
        span = trace.spans[0]
        assert span.start > 0.0
        assert span.elapsed >= 0.0
        assert span.end == pytest.approx(span.start + span.elapsed)

    def test_child_elapsed_within_parent(self):
        trace = TraceCollector()
        with trace.span("parent"):
            with trace.span("child"):
                sum(range(1000))
        by_name = {span.name: span for span in trace.spans}
        assert by_name["child"].elapsed <= by_name["parent"].elapsed


class TestConcurrentWorkers:
    def test_worker_spans_join_one_tree(self):
        """Spans opened on worker threads with an explicit parent merge
        into the main tree with intact parent/child links."""
        trace = TraceCollector()
        with trace.span("run") as root:

            def work(i: int) -> None:
                with trace.span(f"task.{i}", parent=root.span_id):
                    with trace.span("inner"):
                        pass

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(8)))

        spans = trace.spans
        ids = {span.span_id for span in spans}
        assert len(ids) == len(spans) == 1 + 8 * 2
        # Every parent link resolves to a recorded span.
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids
        assert {f"run/task.{i}" for i in range(8)} <= ids
        assert {f"run/task.{i}/inner" for i in range(8)} <= ids

    def test_same_id_set_at_any_worker_count(self):
        def run(workers: int) -> set:
            trace = TraceCollector()
            with trace.span("run") as root:

                def work(i: int) -> None:
                    with trace.span(f"task.{i}",
                                    parent=root.span_id):
                        pass

                with ThreadPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(work, range(6)))
            return {span.span_id for span in trace.spans}

        assert run(1) == run(4)


class TestReading:
    def _tree(self) -> TraceCollector:
        trace = TraceCollector()
        with trace.span("run"):
            with trace.span("load"):
                pass
            with trace.span("match"):
                with trace.span("predict"):
                    pass
        return trace

    def test_roots_and_children(self):
        trace = self._tree()
        assert [span.span_id for span in trace.roots()] == ["run"]
        children = [span.span_id for span in trace.children_of("run")]
        assert children == ["run/load", "run/match"]

    def test_iter_tree_covers_subtree(self):
        trace = self._tree()
        root = trace.roots()[0]
        names = {span.span_id
                 for span in iter_tree(trace.spans, root)}
        assert names == {"run", "run/load", "run/match",
                         "run/match/predict"}

    def test_jsonl_round_trip(self, tmp_path):
        trace = self._tree()
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)
        loaded = read_jsonl(path)
        assert [span.as_dict() for span in loaded] == \
            [span.as_dict() for span in trace.spans]

    def test_empty_collector_writes_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        TraceCollector().write_jsonl(path)
        assert path.read_text() == ""
        assert read_jsonl(path) == []


class TestNullCollector:
    def test_disabled_and_inert(self, tmp_path):
        assert not NULL_TRACE.enabled
        with NULL_TRACE.span("anything", parent="x", attr=1) as span:
            span.set_attribute("k", "v")
            assert span.span_id is None
        assert len(NULL_TRACE) == 0
        assert NULL_TRACE.roots() == []
        assert NULL_TRACE.to_jsonl() == ""
        path = tmp_path / "null.jsonl"
        NULL_TRACE.write_jsonl(path)
        assert path.read_text() == ""

    def test_span_dataclass_dict(self):
        span = Span("n", "p/n", "p", start=1.0, elapsed=0.5,
                    attributes={"a": 1})
        data = span.as_dict()
        assert data["end"] == 1.5
        assert data["attributes"] == {"a": 1}
