"""Tests for the TF-IDF vector space and cosine similarity."""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import TfidfVectorSpace, cosine_similarity

DOCS = [
    ["fantastic", "house", "great", "location"],
    ["great", "yard", "close", "river"],
    ["miami", "fl"],
    ["boston", "ma"],
]


class TestVectorSpace:
    def test_fit_builds_vocabulary(self):
        space = TfidfVectorSpace(DOCS)
        assert "fantastic" in space.vocabulary
        assert space.n_documents == 4

    def test_self_similarity_is_one(self):
        space = TfidfVectorSpace(DOCS)
        sims = space.similarities(DOCS)
        assert np.allclose(np.diag(sims), 1.0)

    def test_disjoint_docs_have_zero_similarity(self):
        space = TfidfVectorSpace(DOCS)
        sims = space.similarities([["miami", "fl"]])
        assert sims[0, 3] == pytest.approx(0.0)

    def test_similarity_in_unit_interval(self):
        space = TfidfVectorSpace(DOCS)
        sims = space.similarities([["great", "house"], ["river"]])
        assert np.all(sims >= 0.0) and np.all(sims <= 1.0 + 1e-12)

    def test_shared_tokens_increase_similarity(self):
        space = TfidfVectorSpace(DOCS)
        sims = space.similarities([["great", "location", "house"]])
        assert sims[0, 0] > sims[0, 1] > 0.0

    def test_oov_tokens_ignored(self):
        space = TfidfVectorSpace(DOCS)
        sims_with = space.similarities([["miami", "zzz", "qqq"]])
        sims_without = space.similarities([["miami"]])
        assert sims_with[0, 2] == pytest.approx(sims_without[0, 2])

    def test_all_oov_query_is_zero(self):
        space = TfidfVectorSpace(DOCS)
        sims = space.similarities([["nothing", "matches"]])
        assert np.allclose(sims, 0.0)

    def test_empty_document_allowed(self):
        space = TfidfVectorSpace([["a"], []])
        sims = space.similarities([[]])
        assert np.allclose(sims, 0.0)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfVectorSpace([])

    def test_rare_term_outweighs_common(self):
        # 'common' appears everywhere, 'rare' once; a query containing both
        # must be closer to the doc sharing 'rare'.
        docs = [["common", "rare"], ["common", "x"], ["common", "y"],
                ["common", "z"]]
        space = TfidfVectorSpace(docs)
        sims = space.similarities([["rare"]])
        assert sims[0, 0] > sims[0, 1]

    def test_term_frequency_saturates(self):
        # (1 + log tf) weighting: 10 repeats is not 10x the weight.
        docs = [["word"], ["word"] * 10, ["other"]]
        space = TfidfVectorSpace(docs)
        sims = space.similarities([["word"]])
        assert sims[0, 0] == pytest.approx(sims[0, 1])


class TestCosineSimilarity:
    def test_identical(self):
        assert cosine_similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_similarity(["a"], ["b"]) == pytest.approx(0.0)

    def test_empty(self):
        assert cosine_similarity([], ["a"]) == 0.0

    def test_symmetry(self):
        a = ["house", "great", "yard"]
        b = ["great", "location"]
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(b, a))


tokens = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)
documents = st.lists(tokens, min_size=0, max_size=8)


class TestProperties:
    @given(st.lists(documents, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_similarities_bounded(self, docs):
        space = TfidfVectorSpace(docs)
        sims = space.similarities(docs)
        assert np.all(sims >= -1e-12)
        assert np.all(sims <= 1.0 + 1e-9)

    @given(st.lists(documents, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_similarity_matrix_symmetric(self, docs):
        space = TfidfVectorSpace(docs)
        sims = space.similarities(docs)
        assert np.allclose(sims, sims.T, atol=1e-9)
