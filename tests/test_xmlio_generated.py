"""Generator-driven property tests tying the whole XML substrate together.

Hypothesis builds random schema shapes; we render them as DTDs, generate
conforming documents, and assert the parser/validator/writer loop agrees
with itself:

* a document generated from a schema validates against its DTD,
* mutating the document (dropping a required child, injecting an
  undeclared element) makes validation fail,
* the DTD survives write/parse round trips.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlio import (Element, is_valid, parse_dtd, validate,
                         write_dtd, write_element, parse_element)

tag_names = st.text(alphabet=string.ascii_lowercase, min_size=2,
                    max_size=6)


@st.composite
def schema_shapes(draw):
    """A random two-level schema: root -> groups/leaves -> leaves.

    Returns (root, children) where children is a list of
    (tag, optional?, grandchildren) and grandchildren is a (possibly
    empty) list of (tag, optional?) pairs.
    """
    names = draw(st.lists(tag_names, min_size=3, max_size=10,
                          unique=True))
    root, *rest = names
    children = []
    index = 0
    while index < len(rest):
        tag = rest[index]
        index += 1
        optional = draw(st.booleans())
        n_grandchildren = draw(st.integers(0, min(2, len(rest) - index)))
        grandchildren = []
        for __ in range(n_grandchildren):
            grandchildren.append((rest[index], draw(st.booleans())))
            index += 1
        children.append((tag, optional, grandchildren))
    return root, children


def render_dtd(shape) -> str:
    root, children = shape
    lines = []
    parts = [f"{tag}{'?' if optional else ''}"
             for tag, optional, __ in children]
    lines.append(f"<!ELEMENT {root} ({', '.join(parts)})>")
    for tag, __, grandchildren in children:
        if grandchildren:
            inner = ", ".join(
                f"{name}{'?' if optional else ''}"
                for name, optional in grandchildren)
            lines.append(f"<!ELEMENT {tag} ({inner})>")
            for name, __opt in grandchildren:
                lines.append(f"<!ELEMENT {name} (#PCDATA)>")
        else:
            lines.append(f"<!ELEMENT {tag} (#PCDATA)>")
    return "\n".join(lines)


def generate_document(shape, include_optional: bool) -> Element:
    root_tag, children = shape
    root = Element(root_tag)
    for tag, optional, grandchildren in children:
        if optional and not include_optional:
            continue
        child = Element(tag)
        if grandchildren:
            for name, grand_optional in grandchildren:
                if grand_optional and not include_optional:
                    continue
                child.make_child(name, "text")
        else:
            child.append_text("text")
        root.append(child)
    return root


class TestGeneratedSchemas:
    @given(schema_shapes(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conforming_document_validates(self, shape,
                                           include_optional):
        dtd = parse_dtd(render_dtd(shape))
        document = generate_document(shape, include_optional)
        validate(document, dtd)  # must not raise

    @given(schema_shapes())
    @settings(max_examples=60, deadline=None)
    def test_missing_required_child_fails(self, shape):
        root_tag, children = shape
        required = [tag for tag, optional, __ in children
                    if not optional]
        if not required:
            return  # nothing required to remove
        dtd = parse_dtd(render_dtd(shape))
        document = generate_document(shape, include_optional=True)
        victim = document.find(required[0])
        document.children.remove(victim)
        assert not is_valid(document, dtd)

    @given(schema_shapes())
    @settings(max_examples=60, deadline=None)
    def test_undeclared_element_fails(self, shape):
        dtd = parse_dtd(render_dtd(shape))
        document = generate_document(shape, include_optional=True)
        document.make_child("zzzzundeclared", "boom")
        assert not is_valid(document, dtd)

    @given(schema_shapes())
    @settings(max_examples=60, deadline=None)
    def test_dtd_roundtrip(self, shape):
        dtd = parse_dtd(render_dtd(shape))
        reparsed = parse_dtd(write_dtd(dtd))
        assert set(reparsed.tag_names()) == set(dtd.tag_names())
        for name in dtd.tag_names():
            assert repr(reparsed[name].model) == repr(dtd[name].model)

    @given(schema_shapes(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_document_roundtrip_still_validates(self, shape,
                                                include_optional):
        dtd = parse_dtd(render_dtd(shape))
        document = generate_document(shape, include_optional)
        reparsed = parse_element(write_element(document))
        validate(reparsed, dtd)
