"""Tests for tag-name splitting, expansion and the synonym dictionary."""

from repro.text import (SynonymDictionary, default_synonyms, expand_name,
                        normalize_name, split_name)


class TestSplitName:
    def test_hyphenated(self):
        assert split_name("listed-price") == ["listed", "price"]

    def test_underscored(self):
        assert split_name("agent_phone") == ["agent", "phone"]

    def test_camel_case(self):
        assert split_name("listedPrice") == ["listed", "price"]

    def test_upper_camel(self):
        assert split_name("ListedPrice") == ["listed", "price"]

    def test_acronym_boundary(self):
        assert split_name("MLSNumber") == ["mls", "number"]

    def test_all_caps(self):
        assert split_name("AGENT-PHONE") == ["agent", "phone"]

    def test_digits(self):
        assert split_name("phone2") == ["phone", "2"]

    def test_single_word(self):
        assert split_name("price") == ["price"]

    def test_normalize(self):
        assert normalize_name("LISTED-PRICE") == "listed price"
        assert normalize_name("listedPrice") == "listed price"


class TestExpandName:
    def test_own_tokens_doubled(self):
        tokens = expand_name("price")
        assert tokens.count("price") == 2

    def test_path_tokens_included(self):
        tokens = expand_name("phone", path=("house-listing", "contact"))
        assert "contact" in tokens and "house" in tokens

    def test_abbreviation_expansion(self):
        tokens = expand_name("office-st")
        assert "street" in tokens

    def test_synonym_expansion(self):
        syn = SynonymDictionary([("phone", "telephone")])
        tokens = expand_name("agent-phone", synonyms=syn)
        assert "telephone" in tokens

    def test_no_expansion_flag(self):
        tokens = expand_name("office-st", expand_abbreviations=False)
        assert "street" not in tokens


class TestSynonymDictionary:
    def test_symmetric(self):
        syn = SynonymDictionary([("phone", "telephone")])
        assert syn.are_synonyms("telephone", "phone")
        assert syn.are_synonyms("phone", "telephone")

    def test_reflexive(self):
        syn = SynonymDictionary()
        assert syn.are_synonyms("anything", "anything")

    def test_transitive_through_merge(self):
        syn = SynonymDictionary([("a", "b"), ("b", "c")])
        assert syn.are_synonyms("a", "c")

    def test_case_insensitive(self):
        syn = SynonymDictionary([("Phone", "TELEPHONE")])
        assert syn.are_synonyms("phone", "telephone")

    def test_expand_dedupes(self):
        syn = SynonymDictionary([("price", "cost")])
        expanded = syn.expand(["price", "cost"])
        assert expanded.count("price") == 1
        assert expanded.count("cost") == 1

    def test_unknown_word_expands_to_itself(self):
        syn = SynonymDictionary()
        assert syn.expand(["widget"]) == ["widget"]

    def test_default_dictionary_covers_paper_pairs(self):
        syn = default_synonyms()
        # comments <-> DESCRIPTION is exactly the pair the paper calls out
        # as hard for a raw name matcher without synonyms.
        assert syn.are_synonyms("comments", "description")
        assert syn.are_synonyms("phone", "telephone")
        assert syn.are_synonyms("location", "address")
