"""Per-rule tests for the static checker: each rule gets a known-good
snippet (no findings) and injected violations (the findings the lint
gate must catch)."""

import textwrap
from pathlib import Path

from repro.analysis.engine import SourceFile, analyze_sources, get_rules


def lint(code: str, rule: str,
         display: str = "src/repro/example.py") -> list:
    """Findings of one rule over one dedented snippet."""
    source = SourceFile(Path(display), display, textwrap.dedent(code))
    return analyze_sources([source], rules=get_rules([rule])).findings


def lint_project(files: list[tuple[str, str]], rule: str) -> list:
    """Findings of one rule over several (display, code) snippets."""
    sources = [SourceFile(Path(display), display, textwrap.dedent(code))
               for display, code in files]
    return analyze_sources(sources, rules=get_rules([rule])).findings


class TestUnseededRandom:
    def test_global_rng_flagged(self):
        findings = lint("""\
            import random
            x = random.random()
            random.shuffle([1, 2])
            """, "unseeded-random")
        assert len(findings) == 2
        assert all(f.rule == "unseeded-random" for f in findings)

    def test_unseeded_constructors_flagged(self):
        findings = lint("""\
            import random
            import numpy as np
            a = random.Random()
            b = np.random.default_rng()
            """, "unseeded-random")
        assert len(findings) == 2

    def test_from_import_forms_flagged(self):
        findings = lint("""\
            from random import Random, shuffle
            r = Random()
            shuffle([1, 2])
            """, "unseeded-random")
        assert len(findings) == 2

    def test_legacy_numpy_global_rng_flagged(self):
        findings = lint("""\
            import numpy as np
            x = np.random.rand(3)
            """, "unseeded-random")
        assert len(findings) == 1
        assert "legacy" in findings[0].message

    def test_seeded_rngs_clean(self):
        assert lint("""\
            import random
            import numpy as np
            a = random.Random(7)
            b = np.random.default_rng(0)
            c = a.random()
            """, "unseeded-random") == []


class TestWallclock:
    CODE = """\
        import time
        t = time.time()
        d = time.perf_counter()
        """

    def test_wallclock_flagged_in_pipeline_code(self):
        findings = lint(self.CODE, "wallclock",
                        display="src/repro/core/example.py")
        assert len(findings) == 2
        assert findings[0].severity == "warning"

    def test_observability_and_benchmarks_exempt(self):
        for display in ("src/repro/observability/example.py",
                        "benchmarks/example.py"):
            assert lint(self.CODE, "wallclock", display=display) == []


class TestSetIteration:
    def test_for_loop_over_set_flagged(self):
        findings = lint("""\
            for x in {1, 2, 3}:
                print(x)
            """, "set-iteration")
        assert len(findings) == 1

    def test_comprehension_over_set_flagged(self):
        findings = lint("""\
            def f(xs):
                return [x + 1 for x in set(xs)]
            """, "set-iteration")
        assert len(findings) == 1

    def test_order_capturing_wrapper_flagged(self):
        findings = lint("""\
            def f(xs):
                return list(set(xs)), ", ".join({"a", "b"})
            """, "set-iteration")
        assert len(findings) == 2

    def test_sorted_and_reductions_clean(self):
        assert lint("""\
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
                return sum(set(xs)), len({1, 2}), max(set(xs))
            """, "set-iteration") == []


class TestExecutorSharedWrite:
    def test_lambda_mutating_closure_list_flagged(self):
        findings = lint("""\
            results = []

            def run(pool, items):
                pool.map(lambda item: results.append(item), items)
            """, "executor-shared-write")
        assert len(findings) == 1
        assert "results.append" in findings[0].message

    def test_one_hop_helper_writing_module_dict_flagged(self):
        findings = lint("""\
            cache = {}

            def worker(item):
                cache[item] = item

            def run(pool, items):
                pool.map(lambda item: worker(item), items)
            """, "executor-shared-write")
        assert len(findings) == 1
        assert "stores into shared" in findings[0].message

    def test_global_declaration_flagged(self):
        findings = lint("""\
            total = 0

            def worker(a, b):
                global total
                total += a + b

            def run(pool, pairs):
                pool.starmap(worker, pairs)
            """, "executor-shared-write")
        assert any("global" in f.message for f in findings)

    def test_pure_worker_clean(self):
        assert lint("""\
            def worker(item):
                out = []
                out.append(item * 2)
                return out

            def run(pool, items):
                return pool.map(worker, items)
            """, "executor-shared-write") == []

    def test_benign_cache_allowlisted(self):
        assert lint("""\
            _text_cache = {}

            def worker(text):
                _text_cache[text] = text.split()
                stats.hits += 1
                return _text_cache[text]

            def run(pool, texts):
                return pool.map(worker, texts)
            """, "executor-shared-write") == []


class TestProcessUnsafeState:
    def test_handler_writing_module_dict_flagged(self):
        findings = lint("""\
            results = {}

            @task_handler("predict")
            def handle(state, task, profile):
                results[task["id"]] = task
                return task
            """, "process-unsafe-state")
        assert len(findings) == 1
        assert "never sees the write" in findings[0].message

    def test_one_hop_helper_global_counter_flagged(self):
        findings = lint("""\
            seen = 0

            def bump():
                global seen
                seen += 1

            @procpool.task_handler("predict")
            def handle(state, task, profile):
                bump()
                return task
            """, "process-unsafe-state")
        assert len(findings) == 1
        assert "global" in findings[0].message

    def test_mutating_method_on_closure_flagged(self):
        findings = lint("""\
            log = []

            @task_handler("score")
            def handle(state, task, profile):
                log.append(task)
                return task
            """, "process-unsafe-state")
        assert len(findings) == 1
        assert "log.append" in findings[0].message

    def test_state_param_writes_clean(self):
        assert lint("""\
            @task_handler("predict")
            def handle(state, task, profile):
                state.batches[task["batch"]] = task["rows"]
                local = []
                local.append(task)
                return local
            """, "process-unsafe-state") == []

    def test_registry_write_in_decorator_itself_clean(self):
        # The @task_handler registration write runs at import time in
        # every process — it is not worker-side mutation.
        assert lint("""\
            _TASK_HANDLERS = {}

            def task_handler(kind):
                def decorate(fn):
                    _TASK_HANDLERS[kind] = fn
                    return fn
                return decorate

            @task_handler("predict")
            def handle(state, task, profile):
                return task
            """, "process-unsafe-state") == []

    def test_benign_cache_allowlisted(self):
        assert lint("""\
            _text_cache = {}

            @task_handler("predict")
            def handle(state, task, profile):
                _text_cache[task["text"]] = task["tokens"]
                return _text_cache[task["text"]]
            """, "process-unsafe-state") == []

    def test_undecorated_function_ignored(self):
        assert lint("""\
            results = {}

            def handle(state, task, profile):
                results[task["id"]] = task
                return task
            """, "process-unsafe-state") == []


BASE = """\
    class BaseLearner:
        def fit(self, instances, labels):
            raise NotImplementedError

        def predict_scores(self, instances):
            raise NotImplementedError

        def clone(self):
            raise NotImplementedError
    """


class TestLearnerContract:
    def test_complete_learner_clean(self):
        assert lint_project([
            ("src/repro/learners/base.py", BASE),
            ("src/repro/learners/good.py", """\
                class Good(BaseLearner):
                    name = "good"

                    def fit(self, instances, labels):
                        return self

                    def predict_scores(self, instances):
                        return []

                    def clone(self):
                        return Good()
                """),
        ], "learner-contract") == []

    def test_missing_methods_and_name_flagged(self):
        findings = lint_project([
            ("src/repro/learners/base.py", BASE),
            ("src/repro/learners/bad.py", """\
                class Bad(BaseLearner):
                    def fit(self, instances, labels):
                        return self
                """),
        ], "learner-contract")
        messages = " ".join(f.message for f in findings)
        assert "predict_scores" in messages
        assert "clone" in messages
        assert "'name'" in messages

    def test_corpus_mutation_flagged(self):
        findings = lint_project([
            ("src/repro/learners/base.py", BASE),
            ("src/repro/learners/mutator.py", """\
                class Mutator(BaseLearner):
                    name = "mutator"

                    def fit(self, instances, labels):
                        instances.sort()
                        labels[0] = None
                        return self

                    def predict_scores(self, instances):
                        return []

                    def clone(self):
                        return Mutator()
                """),
        ], "learner-contract")
        assert len(findings) == 2
        assert all("training corpus" in f.message for f in findings)

    def test_abstract_intermediate_exempt(self):
        assert lint_project([
            ("src/repro/learners/base.py", BASE),
            ("src/repro/learners/middle.py", """\
                import abc

                class Middle(BaseLearner):
                    @abc.abstractmethod
                    def extra(self):
                        ...
                """),
        ], "learner-contract") == []

    def test_contract_inherited_through_chain(self):
        """A subclass of a concrete learner inherits the contract."""
        assert lint_project([
            ("src/repro/learners/base.py", BASE),
            ("src/repro/learners/tower.py", """\
                class Complete(BaseLearner):
                    name = "complete"

                    def fit(self, instances, labels):
                        return self

                    def predict_scores(self, instances):
                        return []

                    def clone(self):
                        return Complete()

                class Derived(Complete):
                    name = "derived"
                """),
        ], "learner-contract") == []


METRICS = """\
    M_GOOD = "lsd.good"
    M_UNUSED = "lsd.unused"

    CATALOGUE = {
        M_GOOD: ("counter", "a used metric"),
        M_UNUSED: ("gauge", "declared but never emitted"),
    }
    """


class TestMetricCatalogue:
    def test_clean_when_vocabulary_agrees(self):
        findings = lint_project([
            ("src/repro/observability/metrics.py", """\
                M_GOOD = "lsd.good"

                CATALOGUE = {
                    M_GOOD: ("counter", "a used metric"),
                }
                """),
            ("src/repro/core/emit.py", """\
                from ..observability.metrics import M_GOOD

                def work(obs):
                    obs.metrics.counter(M_GOOD).inc()
                """),
        ], "metric-catalogue")
        assert findings == []

    def test_undeclared_and_never_emitted_flagged(self):
        findings = lint_project([
            ("src/repro/observability/metrics.py", METRICS),
            ("src/repro/core/emit.py", """\
                from ..observability.metrics import M_GOOD

                def work(obs):
                    obs.metrics.counter(M_GOOD).inc()
                    obs.metrics.counter("lsd.rogue").inc()
                """),
        ], "metric-catalogue")
        messages = {f.message for f in findings}
        assert any("lsd.rogue" in m and "not declared" in m
                   for m in messages)
        assert any("lsd.unused" in m and "never emitted" in m
                   for m in messages)
        assert len(findings) == 2

    def test_kind_mismatch_flagged(self):
        findings = lint_project([
            ("src/repro/observability/metrics.py", """\
                M_GOOD = "lsd.good"

                CATALOGUE = {
                    M_GOOD: ("counter", "a used metric"),
                }
                """),
            ("src/repro/core/emit.py", """\
                from ..observability.metrics import M_GOOD

                def work(obs):
                    obs.metrics.gauge(M_GOOD).set(1)
                """),
        ], "metric-catalogue")
        assert len(findings) == 1
        assert "catalogued as a counter" in findings[0].message

    def test_scratch_names_in_tests_exempt(self):
        """Registry unit tests emit throwaway names; only the
        never-emitted direction may still fire, not undeclared."""
        findings = lint_project([
            ("src/repro/observability/metrics.py", """\
                M_GOOD = "lsd.good"

                CATALOGUE = {
                    M_GOOD: ("counter", "a used metric"),
                }
                """),
            ("tests/test_registry.py", """\
                def test_counter(registry):
                    registry.counter("scratch").inc()
                """),
            ("src/repro/core/emit.py", """\
                from ..observability.metrics import M_GOOD

                def work(obs):
                    obs.metrics.counter(M_GOOD).inc()
                """),
        ], "metric-catalogue")
        assert findings == []


class TestSpanUnclosed:
    def test_bare_span_call_flagged(self):
        findings = lint("""\
            def work(trace):
                span = trace.span("match")
                span.set_attribute("x", 1)
            """, "span-unclosed")
        assert len(findings) == 1

    def test_with_statement_clean(self):
        assert lint("""\
            def work(trace):
                with trace.span("match") as outer:
                    with trace.span("predict", parent=outer.span_id):
                        pass
                with trace.span("a"), trace.span("b"):
                    pass
            """, "span-unclosed") == []


class TestBlindExcept:
    def test_bare_except_flagged(self):
        findings = lint("""\
            try:
                risky()
            except:
                pass
            """, "blind-except")
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_blind_exception_without_reraise_flagged(self):
        findings = lint("""\
            def f():
                try:
                    risky()
                except Exception as exc:
                    print(exc)
            """, "blind-except")
        assert len(findings) == 1

    def test_blind_name_inside_tuple_flagged(self):
        findings = lint("""\
            try:
                risky()
            except (RuntimeError, Exception):
                pass
            """, "blind-except")
        assert len(findings) == 1

    def test_concrete_and_reraising_handlers_clean(self):
        assert lint("""\
            def f():
                try:
                    risky()
                except ValueError:
                    pass
                try:
                    risky()
                except Exception:
                    cleanup()
                    raise
            """, "blind-except") == []


EVENTS = """\
EV_GOOD = "good_event"
EV_UNUSED = "unused_event"

EVENT_CATALOGUE = {
    EV_GOOD: "a used event",
    EV_UNUSED: "a catalogued but never emitted event",
}
"""


class TestEventCatalogue:
    def test_clean_when_vocabulary_agrees(self):
        findings = lint_project([
            ("src/repro/observability/events.py", """\
                EV_GOOD = "good_event"

                EVENT_CATALOGUE = {
                    EV_GOOD: "a used event",
                }
                """),
            ("src/repro/core/emit.py", """\
                from ..observability.events import EV_GOOD

                def work(obs):
                    obs.events.emit(EV_GOOD, stage="extract")
                """),
        ], "event-catalogue")
        assert findings == []

    def test_undeclared_and_never_emitted_flagged(self):
        findings = lint_project([
            ("src/repro/observability/events.py", EVENTS),
            ("src/repro/core/emit.py", """\
                from ..observability.events import EV_GOOD

                def work(obs, stream):
                    obs.events.emit(EV_GOOD)
                    stream.emit("rogue_event")
                """),
        ], "event-catalogue")
        messages = {f.message for f in findings}
        assert any("rogue_event" in m and "not declared" in m
                   for m in messages)
        assert any("unused_event" in m and "never emitted" in m
                   for m in messages)
        assert len(findings) == 2

    def test_trace_collector_emit_is_out_of_scope(self):
        """TraceCollector.emit takes span dicts, not event kinds — a
        receiver that is not an event stream must not be checked."""
        findings = lint_project([
            ("src/repro/observability/events.py", """\
                EV_GOOD = "good_event"

                EVENT_CATALOGUE = {
                    EV_GOOD: "a used event",
                }
                """),
            ("src/repro/core/emit.py", """\
                from ..observability.events import EV_GOOD

                def work(obs, collector):
                    obs.events.emit(EV_GOOD)
                    collector.emit({"name": "span"})
                    obs.trace.emit({"name": "span"})
                """),
        ], "event-catalogue")
        assert findings == []

    def test_scratch_kinds_in_tests_exempt(self):
        findings = lint_project([
            ("src/repro/observability/events.py", """\
                EV_GOOD = "good_event"

                EVENT_CATALOGUE = {
                    EV_GOOD: "a used event",
                }
                """),
            ("tests/test_events.py", """\
                from repro.observability.events import EV_GOOD

                def test_emit(stream):
                    stream.emit(EV_GOOD)
                    stream.emit("scratch_kind")
                """),
        ], "event-catalogue")
        assert findings == []

    def test_string_literal_kinds_resolve(self):
        findings = lint_project([
            ("src/repro/observability/events.py", EVENTS),
            ("src/repro/core/emit.py", """\
                def work(events):
                    events.emit("good_event")
                    events.emit("unused_event")
                """),
        ], "event-catalogue")
        assert findings == []
