"""Tests for cross-validation and the stacking meta-learner."""

import numpy as np
import pytest

from repro.learners import (NaiveBayesLearner, NameMatcher,
                            StackingMetaLearner, cross_validate)

from .helpers import make_instance, space_of, training_set

SPACE = space_of("ADDRESS", "DESCRIPTION")

TRAINING = [
    (make_instance("location", "Miami, FL"), "ADDRESS"),
    (make_instance("location", "Boston, MA"), "ADDRESS"),
    (make_instance("location", "Austin, TX"), "ADDRESS"),
    (make_instance("addr", "Denver, CO"), "ADDRESS"),
    (make_instance("addr", "Salem, OR"), "ADDRESS"),
    (make_instance("comments", "great house"), "DESCRIPTION"),
    (make_instance("comments", "fantastic yard"), "DESCRIPTION"),
    (make_instance("comments", "close to river"), "DESCRIPTION"),
    (make_instance("desc", "beautiful view"), "DESCRIPTION"),
    (make_instance("desc", "great location"), "DESCRIPTION"),
]


class TestCrossValidate:
    def test_shape_and_normalisation(self):
        instances, labels = training_set(TRAINING)
        scores = cross_validate(NaiveBayesLearner(), instances, labels,
                                SPACE, folds=5, seed=0)
        assert scores.shape == (len(instances), len(SPACE))
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_no_in_sample_bias(self):
        """CV scores must differ from in-sample scores: each example is
        predicted by a model that never saw it."""
        instances, labels = training_set(TRAINING)
        learner = NaiveBayesLearner()
        cv = cross_validate(learner, instances, labels, SPACE, folds=5,
                            seed=0)
        learner.fit(instances, labels, SPACE)
        in_sample = learner.predict_scores(instances)
        assert not np.allclose(cv, in_sample)
        # In-sample predictions should look better on average.
        truth_cols = [SPACE.index_of(l) for l in labels]
        rows = np.arange(len(labels))
        assert in_sample[rows, truth_cols].mean() >= \
            cv[rows, truth_cols].mean()

    def test_deterministic_given_seed(self):
        instances, labels = training_set(TRAINING)
        a = cross_validate(NaiveBayesLearner(), instances, labels, SPACE,
                           seed=7)
        b = cross_validate(NaiveBayesLearner(), instances, labels, SPACE,
                           seed=7)
        assert np.allclose(a, b)

    def test_handles_fewer_examples_than_folds(self):
        instances, labels = training_set(TRAINING[:3])
        scores = cross_validate(NaiveBayesLearner(), instances, labels,
                                SPACE, folds=5)
        assert scores.shape == (3, len(SPACE))

    def test_empty_input(self):
        scores = cross_validate(NaiveBayesLearner(), [], [], SPACE)
        assert scores.shape == (0, len(SPACE))

    def test_single_example_gets_uniform_scores(self):
        """Regression: with n=1 the old code still ran 2 folds, handing
        WHIRL an empty training split and crashing the training phase.
        A single example cannot be held out of its own training set, so
        it gets uniform scores instead."""
        instances, labels = training_set(TRAINING[:1])
        scores = cross_validate(NameMatcher(), instances, labels, SPACE,
                                folds=5)
        assert scores.shape == (1, len(SPACE))
        assert np.allclose(scores, 1.0 / len(SPACE))

    def test_two_examples_cap_folds_without_empty_splits(self):
        """n=2 with folds=5 must cap to 2 folds (train on one, predict
        the other) rather than produce empty splits."""
        instances, labels = training_set(TRAINING[:2])
        scores = cross_validate(NameMatcher(), instances, labels, SPACE,
                                folds=5)
        assert scores.shape == (2, len(SPACE))
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_untrainable_fold_falls_back_to_uniform(self):
        """A clone that cannot fit on some split (here: WHIRL on empty
        token lists) yields uniform scores for that fold instead of
        aborting cross-validation."""
        instances, labels = training_set([
            (make_instance("a", ""), "ADDRESS"),
            (make_instance("b", ""), "DESCRIPTION"),
        ])
        scores = cross_validate(NaiveBayesLearner(), instances, labels,
                                SPACE, folds=2)
        assert scores.shape == (2, len(SPACE))
        assert np.all(np.isfinite(scores))

    def test_parallel_executor_matches_serial(self):
        from repro.core.parallel import ParallelExecutor
        instances, labels = training_set(TRAINING)
        serial = cross_validate(NaiveBayesLearner(), instances, labels,
                                SPACE, folds=5, seed=0)
        parallel = cross_validate(NaiveBayesLearner(), instances, labels,
                                  SPACE, folds=5, seed=0,
                                  executor=ParallelExecutor(4))
        assert np.array_equal(serial, parallel)


class TestStackingMetaLearner:
    def _cv_scores(self):
        instances, labels = training_set(TRAINING)
        return {
            "name_matcher": cross_validate(
                NameMatcher(), instances, labels, SPACE, seed=0),
            "naive_bayes": cross_validate(
                NaiveBayesLearner(), instances, labels, SPACE, seed=0),
        }, labels

    def test_fit_produces_weights(self):
        cv_scores, labels = self._cv_scores()
        meta = StackingMetaLearner()
        meta.fit(cv_scores, labels, SPACE)
        assert meta.weights.shape == (len(SPACE), 2)

    def test_good_learner_gets_higher_weight(self):
        """A learner that predicts the truth perfectly must outweigh one
        that outputs noise."""
        rng = np.random.default_rng(0)
        labels = ["ADDRESS"] * 20 + ["DESCRIPTION"] * 20
        perfect = np.zeros((40, len(SPACE)))
        for i, label in enumerate(labels):
            perfect[i, SPACE.index_of(label)] = 1.0
        noise = rng.dirichlet(np.ones(len(SPACE)), size=40)
        meta = StackingMetaLearner()
        meta.fit({"perfect": perfect, "noise": noise}, labels, SPACE)
        for label in ("ADDRESS", "DESCRIPTION"):
            assert meta.weight_of(label, "perfect") > \
                meta.weight_of(label, "noise")

    def test_weights_can_differ_per_label(self):
        """Figure 5(i): weights are per-(label, learner), reflecting that
        different learners excel on different labels."""
        rng = np.random.default_rng(3)
        labels = ["ADDRESS"] * 30 + ["DESCRIPTION"] * 30
        # Each "expert" scores its own label correctly (high on its rows,
        # low elsewhere) and emits pure noise in its other columns, so one
        # learner's expertise cannot leak into the other label by
        # exclusion.
        a_expert = rng.dirichlet(np.ones(len(SPACE)), size=60)
        d_expert = rng.dirichlet(np.ones(len(SPACE)), size=60)
        a_col = SPACE.index_of("ADDRESS")
        d_col = SPACE.index_of("DESCRIPTION")
        for i, label in enumerate(labels):
            a_expert[i, a_col] = 0.9 if label == "ADDRESS" else 0.05
            d_expert[i, d_col] = 0.9 if label == "DESCRIPTION" else 0.05
        meta = StackingMetaLearner()
        meta.fit({"a": a_expert, "d": d_expert}, labels, SPACE)
        assert meta.weight_of("ADDRESS", "a") > meta.weight_of("ADDRESS",
                                                               "d")
        assert meta.weight_of("DESCRIPTION", "d") > \
            meta.weight_of("DESCRIPTION", "a")

    def test_combine_normalises(self):
        cv_scores, labels = self._cv_scores()
        meta = StackingMetaLearner()
        meta.fit(cv_scores, labels, SPACE)
        combined = meta.combine(cv_scores)
        assert combined.shape == cv_scores["naive_bayes"].shape
        assert np.allclose(combined.sum(axis=1), 1.0)
        assert np.all(combined >= 0)

    def test_combine_improves_over_noise_learner(self):
        rng = np.random.default_rng(1)
        labels = (["ADDRESS"] * 25) + (["DESCRIPTION"] * 25)
        truth_cols = np.array([SPACE.index_of(l) for l in labels])
        good = np.full((50, len(SPACE)), 0.1)
        good[np.arange(50), truth_cols] = 0.8
        noise = rng.dirichlet(np.ones(len(SPACE)), size=50)
        meta = StackingMetaLearner()
        meta.fit({"good": good, "noise": noise}, labels, SPACE)
        combined = meta.combine({"good": good, "noise": noise})
        predicted = combined.argmax(axis=1)
        accuracy = (predicted == truth_cols).mean()
        noise_accuracy = (noise.argmax(axis=1) == truth_cols).mean()
        assert accuracy > noise_accuracy
        assert accuracy >= 0.9

    def test_uniform_fallback(self):
        meta = StackingMetaLearner()
        meta.fit_uniform(["a", "b"], SPACE)
        scores = {"a": np.array([[0.7, 0.2, 0.1]]),
                  "b": np.array([[0.1, 0.8, 0.1]])}
        combined = meta.combine(scores)
        assert np.allclose(combined, [[0.4, 0.5, 0.1]])

    def test_combine_missing_learner_raises(self):
        meta = StackingMetaLearner()
        meta.fit_uniform(["a", "b"], SPACE)
        with pytest.raises(ValueError):
            meta.combine({"a": np.ones((1, len(SPACE)))})

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StackingMetaLearner().combine({})

    def test_weight_table(self):
        meta = StackingMetaLearner()
        meta.fit_uniform(["a", "b"], SPACE)
        table = meta.weight_table()
        assert table["ADDRESS"]["a"] == pytest.approx(0.5)

    def test_empty_learner_dict_raises(self):
        with pytest.raises(ValueError):
            StackingMetaLearner().fit({}, [], SPACE)
