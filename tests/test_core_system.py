"""Integration tests: the paper's running example end-to-end.

Trains LSD on realestate.com and homeseekers.com (Figure 5) and matches
greathomes.com (Figure 6), as in §3 of the paper, with enough synthetic
listings for the learners to find the signal.
"""

import numpy as np
import pytest

from repro.core import (FeedbackSession, LSDSystem, Mapping,
                        MediatedSchema, OTHER, SourceSchema)
from repro.constraints import FrequencyConstraint
from repro.learners import (ContentMatcher, NaiveBayesLearner, NameMatcher,
                            XMLLearner)
from repro.xmlio import parse_fragments

MEDIATED = MediatedSchema("""
<!ELEMENT LISTING (ADDRESS, LISTED-PRICE, DESCRIPTION, CONTACT-INFO)>
<!ELEMENT ADDRESS (#PCDATA)>
<!ELEMENT LISTED-PRICE (#PCDATA)>
<!ELEMENT DESCRIPTION (#PCDATA)>
<!ELEMENT CONTACT-INFO (AGENT-NAME, AGENT-PHONE)>
<!ELEMENT AGENT-NAME (#PCDATA)>
<!ELEMENT AGENT-PHONE (#PCDATA)>
""")

REALESTATE_SCHEMA = SourceSchema("""
<!ELEMENT house (location, listed-price, comments, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT listed-price (#PCDATA)>
<!ELEMENT comments (#PCDATA)>
<!ELEMENT contact (name, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
""", name="realestate.com")

REALESTATE_MAPPING = Mapping({
    "location": "ADDRESS", "listed-price": "LISTED-PRICE",
    "comments": "DESCRIPTION", "contact": "CONTACT-INFO",
    "name": "AGENT-NAME", "phone": "AGENT-PHONE",
})

HOMESEEKERS_SCHEMA = SourceSchema("""
<!ELEMENT entry (house-addr, price, detailed-desc, agent)>
<!ELEMENT house-addr (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT detailed-desc (#PCDATA)>
<!ELEMENT agent (realtor-name, telephone)>
<!ELEMENT realtor-name (#PCDATA)>
<!ELEMENT telephone (#PCDATA)>
""", name="homeseekers.com")

HOMESEEKERS_MAPPING = Mapping({
    "house-addr": "ADDRESS", "price": "LISTED-PRICE",
    "detailed-desc": "DESCRIPTION", "agent": "CONTACT-INFO",
    "realtor-name": "AGENT-NAME", "telephone": "AGENT-PHONE",
})

GREATHOMES_SCHEMA = SourceSchema("""
<!ELEMENT home (area, amount, extra-info, person)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT extra-info (#PCDATA)>
<!ELEMENT person (agent-name, work-phone)>
<!ELEMENT agent-name (#PCDATA)>
<!ELEMENT work-phone (#PCDATA)>
""", name="greathomes.com")

GREATHOMES_TRUTH = Mapping({
    "area": "ADDRESS", "amount": "LISTED-PRICE",
    "extra-info": "DESCRIPTION", "person": "CONTACT-INFO",
    "agent-name": "AGENT-NAME", "work-phone": "AGENT-PHONE",
})

CITIES = ["Miami, FL", "Boston, MA", "Seattle, WA", "Portland, OR",
          "Austin, TX", "Denver, CO", "Kent, WA", "Orlando, FL"]
DESCRIPTIONS = ["Fantastic house with great location",
                "Great yard, close to the river",
                "Beautiful view, spacious rooms",
                "Nice area, fantastic beach nearby",
                "Charming home with great schools",
                "Spacious house, beautiful garden",
                "Close to highway, great value",
                "Victorian charm, fantastic deal"]
NAMES = ["Kate Richardson", "Mike Smith", "Jane Kendall",
         "Matt Richardson", "Gail Murphy", "Joe Brown", "Ann Lee",
         "Sam Fox"]


def make_listings(tags, count, seed):
    """Generate listings for a 4-leaf + contact-pair schema shape."""
    rng = np.random.default_rng(seed)
    root, addr, price, desc, group, person_name, phone = tags
    parts = []
    for __ in range(count):
        city = CITIES[rng.integers(len(CITIES))]
        text = DESCRIPTIONS[rng.integers(len(DESCRIPTIONS))]
        agent = NAMES[rng.integers(len(NAMES))]
        amount = int(rng.integers(60, 900)) * 1000
        tel = (f"({rng.integers(200, 999)}) {rng.integers(200, 999)} "
               f"{rng.integers(1000, 9999)}")
        parts.append(
            f"<{root}><{addr}>{city}</{addr}>"
            f"<{price}>$ {amount:,}</{price}>"
            f"<{desc}>{text}</{desc}>"
            f"<{group}><{person_name}>{agent}</{person_name}>"
            f"<{phone}>{tel}</{phone}></{group}></{root}>")
    return parse_fragments("".join(parts))


REALESTATE_LISTINGS = make_listings(
    ("house", "location", "listed-price", "comments", "contact", "name",
     "phone"), 30, seed=1)
HOMESEEKERS_LISTINGS = make_listings(
    ("entry", "house-addr", "price", "detailed-desc", "agent",
     "realtor-name", "telephone"), 30, seed=2)
GREATHOMES_LISTINGS = make_listings(
    ("home", "area", "amount", "extra-info", "person", "agent-name",
     "work-phone"), 30, seed=3)


def trained_system(**kwargs) -> LSDSystem:
    system = LSDSystem(
        MEDIATED,
        [NameMatcher(), ContentMatcher(), NaiveBayesLearner(),
         XMLLearner()],
        constraints=[FrequencyConstraint.at_most_one(label)
                     for label in MEDIATED.label_space().real_labels()],
        **kwargs)
    system.add_training_source(REALESTATE_SCHEMA, REALESTATE_LISTINGS,
                               REALESTATE_MAPPING)
    system.add_training_source(HOMESEEKERS_SCHEMA, HOMESEEKERS_LISTINGS,
                               HOMESEEKERS_MAPPING)
    system.train()
    return system


@pytest.fixture(scope="module")
def system():
    return trained_system()


@pytest.fixture(scope="module")
def result(system):
    return system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)


class TestEndToEnd:
    def test_perfect_matching_on_papers_example(self, result):
        assert result.mapping.accuracy_against(GREATHOMES_TRUTH) == 1.0

    def test_extra_info_matches_description(self, result):
        """The paper's motivating prediction: extra-info => DESCRIPTION."""
        assert result.mapping["extra-info"] == "DESCRIPTION"

    def test_tag_scores_are_distributions(self, result):
        for row in result.tag_scores.values():
            assert np.isclose(row.sum(), 1.0)
            assert np.all(row >= 0)

    def test_prediction_accessors(self, result):
        prediction = result.prediction_for("area")
        assert prediction.top() == "ADDRESS"
        assert result.top_candidates("area", 2)[0][0] == "ADDRESS"

    def test_timings_recorded(self, result):
        assert set(result.timings) == {"extract", "predict", "constraints"}
        assert all(v >= 0 for v in result.timings.values())

    def test_weight_table_available(self, system):
        table = system.weight_table()
        assert "ADDRESS" in table
        assert set(table["ADDRESS"]) == set(system.learner_names())

    def test_match_before_train_raises(self):
        fresh = LSDSystem(MEDIATED, [NaiveBayesLearner()])
        with pytest.raises(RuntimeError):
            fresh.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)

    def test_train_without_sources_raises(self):
        fresh = LSDSystem(MEDIATED, [NaiveBayesLearner()])
        with pytest.raises(RuntimeError):
            fresh.train()

    def test_mapping_validation_on_add(self):
        fresh = LSDSystem(MEDIATED, [NaiveBayesLearner()])
        with pytest.raises(ValueError):
            fresh.add_training_source(
                REALESTATE_SCHEMA, REALESTATE_LISTINGS,
                Mapping({"not-a-tag": "ADDRESS"}))

    def test_unknown_label_in_mapping_raises_at_train(self):
        fresh = LSDSystem(MEDIATED, [NaiveBayesLearner()])
        fresh.add_training_source(
            REALESTATE_SCHEMA, REALESTATE_LISTINGS,
            Mapping({"location": "NOT-A-LABEL"}))
        with pytest.raises(ValueError):
            fresh.train()

    def test_retraining_after_new_source(self, system):
        assert system.is_trained


class TestConfigurations:
    def test_no_constraint_handler_config(self):
        system = trained_system(use_constraint_handler=False)
        assert system.handler is None
        result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)
        # Argmax matching still does well on this easy example.
        assert result.mapping.accuracy_against(GREATHOMES_TRUTH) >= 0.8

    def test_uniform_meta_config(self):
        system = trained_system(use_meta_learner=False)
        assert np.allclose(system.meta.weights, 0.25)
        result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)
        assert result.mapping.accuracy_against(GREATHOMES_TRUTH) >= 0.5

    def test_single_learner_system(self):
        system = LSDSystem(MEDIATED, [NaiveBayesLearner()])
        system.add_training_source(REALESTATE_SCHEMA,
                                   REALESTATE_LISTINGS,
                                   REALESTATE_MAPPING)
        system.train()
        result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)
        assert len(result.mapping) == len(GREATHOMES_SCHEMA.tags)

    def test_needs_learners(self):
        with pytest.raises(ValueError):
            LSDSystem(MEDIATED, [])

    def test_schema_text_accepted(self):
        system = LSDSystem(
            "<!ELEMENT L (A)><!ELEMENT A (#PCDATA)>",
            [NaiveBayesLearner()])
        assert "A" in system.space


class TestThroughputEngine:
    def test_parallel_match_is_byte_identical_to_serial(self, result):
        """--workers 4 must change wall-clock only: every tag's score
        row and the final mapping are byte-identical to the serial run."""
        parallel = trained_system(workers=4).match(GREATHOMES_SCHEMA,
                                                   GREATHOMES_LISTINGS)
        assert set(parallel.tag_scores) == set(result.tag_scores)
        for tag, scores in result.tag_scores.items():
            assert np.array_equal(parallel.tag_scores[tag], scores)
        assert dict(parallel.mapping.items()) == \
            dict(result.mapping.items())

    def test_incremental_structure_matches_full_reprediction(
            self, system, result):
        from repro.core.matching import match_source
        full = match_source(
            GREATHOMES_SCHEMA, GREATHOMES_LISTINGS, system.learners,
            system.meta, system.converter, system.handler, system.space,
            max_instances_per_tag=system.max_instances_per_tag,
            score_filter=system.pruner.prune_scores if system.pruner
            else None,
            incremental_structure=False)
        for tag, scores in result.tag_scores.items():
            assert np.array_equal(full.tag_scores[tag], scores)
        assert dict(full.mapping.items()) == dict(result.mapping.items())

    def test_profile_records_stages_and_counters(self, result):
        profile = result.profile
        for stage in ("extract", "predict", "constrain"):
            assert profile.seconds(stage) > 0.0
        for learner in ("name_matcher", "naive_bayes"):
            assert profile.seconds(f"predict.learner.{learner}") > 0.0
        counters = profile.counters
        assert counters["instances"] > 0
        assert counters["tags"] == len(GREATHOMES_SCHEMA.tags)
        assert counters["structure_passes"] >= 1

    def test_profile_table_renders(self, result):
        table = result.profile.table()
        assert "predict" in table
        assert "instances" in table


class TestFeedbackSession:
    def test_session_reaches_perfect_matching(self, system):
        session = FeedbackSession(system, GREATHOMES_SCHEMA,
                                  GREATHOMES_LISTINGS)
        for tag in session.review_order():
            truth = GREATHOMES_TRUTH.get(tag, OTHER)
            if session.mapping[tag] != truth:
                session.assert_match(tag, truth)
        assert session.mapping.accuracy_against(GREATHOMES_TRUTH) == 1.0

    def test_correction_sticks(self, system):
        session = FeedbackSession(system, GREATHOMES_SCHEMA,
                                  GREATHOMES_LISTINGS)
        session.assert_match("area", OTHER)
        assert session.mapping["area"] == OTHER
        assert session.corrections == 1

    def test_rejection_moves_label(self, system):
        session = FeedbackSession(system, GREATHOMES_SCHEMA,
                                  GREATHOMES_LISTINGS)
        session.reject_match("area", "ADDRESS")
        assert session.mapping["area"] != "ADDRESS"

    def test_review_order_structured_first(self, system):
        session = FeedbackSession(system, GREATHOMES_SCHEMA,
                                  GREATHOMES_LISTINGS)
        assert session.review_order()[0] == "person"

    def test_unknown_tag_raises(self, system):
        session = FeedbackSession(system, GREATHOMES_SCHEMA,
                                  GREATHOMES_LISTINGS)
        with pytest.raises(KeyError):
            session.assert_match("nope", "ADDRESS")
        with pytest.raises(KeyError):
            session.assert_match("area", "NOT-A-LABEL")
