"""Tests for saving and loading trained LSD systems."""

import pickle

import pytest

from repro.core.persistence import (FORMAT_VERSION, ModelFormatError,
                                    load_system, save_system)
from repro.datasets import load_domain
from repro.evaluation import SystemConfig, build_system


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    domain = load_domain("real_estate_1", seed=0)
    system = build_system(domain, SystemConfig("complete"),
                          max_instances_per_tag=20)
    for source in domain.sources[:3]:
        system.add_training_source(source.schema, source.listings(20),
                                   source.mapping)
    system.train()
    return domain, system


class TestRoundTrip:
    def test_save_and_load(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path)
        loaded = load_system(path)
        assert loaded.is_trained
        assert loaded.learner_names() == system.learner_names()

    def test_loaded_system_matches_identically(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path)
        loaded = load_system(path)

        test = domain.sources[4]
        listings = test.listings(20)
        original = system.match(test.schema, listings)
        reloaded = loaded.match(test.schema, listings)
        assert original.mapping == reloaded.mapping

    def test_loaded_system_can_keep_learning(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path)
        loaded = load_system(path)
        fourth = domain.sources[3]
        loaded.confirm_and_learn(fourth.schema, fourth.listings(15),
                                 fourth.mapping)
        assert len(loaded.training_sources) == 4

    def test_weight_tables_survive(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path)
        loaded = load_system(path)
        assert loaded.weight_table() == system.weight_table()


class TestArrayStore:
    """The version-2 layout: hoisted arrays in a ``.arrays/`` sidecar,
    optionally spliced back in as read-only memmaps."""

    def test_save_writes_model_plus_sidecar(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        sidecar = tmp_path / "model.lsd.arrays"
        assert sidecar.is_dir()
        assert list(sidecar.glob("*.npy")), \
            "a trained model should hoist at least one large array"

    def test_roundtrip_matches_identically(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        loaded = load_system(path)
        test = domain.sources[4]
        listings = test.listings(20)
        assert system.match(test.schema, listings).mapping == \
            loaded.match(test.schema, listings).mapping

    def test_mmap_load_matches_identically(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        loaded = load_system(path, mmap_arrays=True)
        test = domain.sources[4]
        listings = test.listings(20)
        assert system.match(test.schema, listings).mapping == \
            loaded.match(test.schema, listings).mapping

    def test_mmap_load_actually_maps(self, trained, tmp_path):
        """The mmap fast path must splice memmaps in, not heap copies.

        ``extract_arrays`` hoists exactly-``np.ndarray`` objects only,
        so re-extracting an mmap-loaded system finds strictly fewer
        arrays than a copy-loaded one — every sidecar slot now holds an
        ``np.memmap``."""
        from repro.core.shared_arrays import extract_arrays

        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        copied = load_system(path, mmap_arrays=False)
        mapped = load_system(path, mmap_arrays=True)
        n_copied = len(extract_arrays(copied)[1])
        n_mapped = len(extract_arrays(mapped)[1])
        assert n_copied > 0
        assert n_mapped < n_copied

    def test_resave_clears_stale_sidecar_entries(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        stale = tmp_path / "model.lsd.arrays" / "9999.npy"
        stale.write_bytes(b"stale")
        save_system(system, path, array_store=True)
        assert not stale.exists()
        assert load_system(path).is_trained

    def test_missing_sidecar_file_is_a_format_error(self, trained,
                                                    tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path, array_store=True)
        sidecar = tmp_path / "model.lsd.arrays"
        victim = sorted(sidecar.glob("*.npy"))[0]
        victim.unlink()
        with pytest.raises(ModelFormatError, match="sidecar"):
            load_system(path)

    def test_mmap_flag_is_ignored_for_v1_models(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "model.lsd"
        save_system(system, path)
        loaded = load_system(path, mmap_arrays=True)
        assert loaded.is_trained


class TestFormatGuards:
    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "junk.lsd"
        path.write_text("this is not a model")
        with pytest.raises(ModelFormatError):
            load_system(path)

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "other.pkl"
        with path.open("wb") as handle:
            pickle.dump({"magic": "something-else"}, handle)
        with pytest.raises(ModelFormatError):
            load_system(path)

    def test_wrong_version(self, trained, tmp_path):
        domain, system = trained
        path = tmp_path / "future.lsd"
        with path.open("wb") as handle:
            pickle.dump({"magic": "repro-lsd",
                         "version": FORMAT_VERSION + 1,
                         "system": system}, handle)
        with pytest.raises(ModelFormatError):
            load_system(path)

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "odd.lsd"
        with path.open("wb") as handle:
            pickle.dump({"magic": "repro-lsd",
                         "version": FORMAT_VERSION,
                         "system": "not a system"}, handle)
        with pytest.raises(ModelFormatError):
            load_system(path)

    def test_truncated_file(self, trained, tmp_path):
        domain, system = trained
        whole = tmp_path / "whole.lsd"
        save_system(system, whole)
        path = tmp_path / "cut.lsd"
        path.write_bytes(whole.read_bytes()[:100])
        with pytest.raises(ModelFormatError):
            load_system(path)

    def test_non_format_errors_propagate(self, tmp_path):
        """Only documented unpickling failures become ModelFormatError;
        an error raised by a class's own __setstate__ is a bug in that
        class and must surface as itself, not as a corrupt-file
        report."""
        path = tmp_path / "explosive.lsd"
        with path.open("wb") as handle:
            pickle.dump({"magic": "repro-lsd",
                         "version": FORMAT_VERSION,
                         "system": _Explosive()}, handle)
        with pytest.raises(RuntimeError, match="__setstate__ bug") \
                as excinfo:
            load_system(path)
        # ModelFormatError subclasses RuntimeError, so pin the exact
        # type: the error must arrive unwrapped.
        assert type(excinfo.value) is RuntimeError


class _Explosive:
    """Pickles fine; detonates a non-format error while unpickling."""

    def __getstate__(self):
        return {"armed": True}

    def __setstate__(self, state):
        raise RuntimeError("__setstate__ bug")
