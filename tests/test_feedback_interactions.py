"""Interaction tests: feedback constraints composing with domain
constraints and with each other."""

import numpy as np
import pytest

from repro.constraints import (AssignmentConstraint, ConstraintHandler,
                               ExclusionConstraint, FrequencyConstraint,
                               MatchContext)
from repro.core import LabelSpace, SourceSchema

SPACE = LabelSpace(["A", "B", "C"])
SCHEMA = SourceSchema("""
<!ELEMENT l (t1, t2, t3)>
<!ELEMENT t1 (#PCDATA)>
<!ELEMENT t2 (#PCDATA)>
<!ELEMENT t3 (#PCDATA)>
""")


def scores(**rows):
    return {tag: np.array(row, dtype=float) for tag, row in rows.items()}


@pytest.fixture
def ctx():
    return MatchContext(SCHEMA)


class TestFeedbackComposition:
    def test_pin_cascades_through_frequency(self, ctx):
        """Pinning t1=A forces t2 (which also wanted A) elsewhere."""
        handler = ConstraintHandler([FrequencyConstraint.at_most_one("A")])
        mapping = handler.find_mapping(
            scores(t1=[0.5, 0.4, 0.05, 0.05],
                   t2=[0.6, 0.3, 0.05, 0.05],
                   t3=[0.1, 0.1, 0.7, 0.1]),
            SPACE, ctx,
            extra_constraints=[AssignmentConstraint("t1", "A")])
        assert mapping["t1"] == "A"
        assert mapping["t2"] != "A"

    def test_multiple_pins(self, ctx):
        handler = ConstraintHandler()
        mapping = handler.find_mapping(
            scores(t1=[0.9, 0.05, 0.03, 0.02],
                   t2=[0.9, 0.05, 0.03, 0.02],
                   t3=[0.9, 0.05, 0.03, 0.02]),
            SPACE, ctx,
            extra_constraints=[AssignmentConstraint("t1", "B"),
                               AssignmentConstraint("t2", "C")])
        assert mapping["t1"] == "B"
        assert mapping["t2"] == "C"
        assert mapping["t3"] == "A"

    def test_exclusions_narrow_until_other(self, ctx):
        handler = ConstraintHandler()
        mapping = handler.find_mapping(
            scores(t1=[0.5, 0.3, 0.15, 0.05],
                   t2=[0.1, 0.8, 0.05, 0.05],
                   t3=[0.1, 0.1, 0.75, 0.05]),
            SPACE, ctx,
            extra_constraints=[ExclusionConstraint("t1", "A"),
                               ExclusionConstraint("t1", "B"),
                               ExclusionConstraint("t1", "C")])
        assert mapping["t1"] == "OTHER"

    def test_contradictory_pin_and_exclusion_falls_back(self, ctx):
        """Pin t1=A while excluding t1=A: unsatisfiable, so the handler
        returns the unconstrained greedy mapping rather than failing."""
        handler = ConstraintHandler()
        mapping = handler.find_mapping(
            scores(t1=[0.9, 0.05, 0.03, 0.02],
                   t2=[0.1, 0.8, 0.05, 0.05],
                   t3=[0.1, 0.1, 0.75, 0.05]),
            SPACE, ctx,
            extra_constraints=[AssignmentConstraint("t1", "A"),
                               ExclusionConstraint("t1", "A")])
        assert mapping["t1"] == "A"  # greedy fallback = argmax

    def test_pin_to_low_probability_label_still_honoured(self, ctx):
        handler = ConstraintHandler()
        mapping = handler.find_mapping(
            scores(t1=[0.97, 0.01, 0.01, 0.01],
                   t2=[0.1, 0.8, 0.05, 0.05],
                   t3=[0.1, 0.1, 0.75, 0.05]),
            SPACE, ctx,
            extra_constraints=[AssignmentConstraint("t1", "C")])
        assert mapping["t1"] == "C"

    def test_feedback_does_not_leak_between_calls(self, ctx):
        """§4.3: feedback applies 'only in matching the current source'."""
        handler = ConstraintHandler()
        pinned = handler.find_mapping(
            scores(t1=[0.9, 0.05, 0.03, 0.02]), SPACE, ctx,
            extra_constraints=[AssignmentConstraint("t1", "B")])
        assert pinned["t1"] == "B"
        fresh = handler.find_mapping(
            scores(t1=[0.9, 0.05, 0.03, 0.02]), SPACE, ctx)
        assert fresh["t1"] == "A"
