"""The meta-check: the shipped rule set over the repo's own code.

This is the lint gate as a test — the repo must stay clean (zero
non-baselined findings) under its own checker, so CI catches a new
determinism/concurrency/hygiene violation the moment it lands.
"""

from pathlib import Path

import pytest

from repro.analysis.cli import DEFAULT_BASELINE
from repro.analysis.engine import analyze_paths
from repro.analysis.findings import Baseline

REPO_ROOT = Path(__file__).resolve().parent.parent


def _baseline() -> Baseline:
    """The checked-in baseline (paths in it are repo-root relative,
    which is why every run below chdirs to the repo root first)."""
    path = REPO_ROOT / DEFAULT_BASELINE
    return Baseline.load(path) if path.exists() else Baseline()


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks"])
def test_tree_is_lint_clean(tree, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert Path(tree).is_dir(), f"expected {REPO_ROOT / tree} to exist"
    result = analyze_paths([tree], baseline=_baseline())
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.ok, (
        f"lsd-lint found {len(result.findings)} non-baselined "
        f"finding(s) in {tree}/:\n{rendered}")


def test_whole_repo_run_reports_file_and_rule_counts(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    result = analyze_paths(["src"], baseline=_baseline())
    assert result.files > 50
    assert result.rules == 11
    assert "clean" in result.summary_line()
