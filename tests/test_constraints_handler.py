"""Tests for the A* search and the constraint handler."""

import numpy as np
import pytest

from repro.constraints import (AssignmentConstraint, ConstraintHandler,
                               ExclusionConstraint, FrequencyConstraint,
                               KeyConstraint, MatchContext,
                               MaxCountSoftConstraint, NestingConstraint,
                               astar)
from repro.core.instance import extract_columns
from repro.core.labels import LabelSpace
from repro.core.schema import SourceSchema
from repro.xmlio import parse_fragments

SPACE = LabelSpace(["PRICE", "ADDRESS", "AGENT-NAME", "AGENT-INFO"])

SCHEMA_TEXT = """
<!ELEMENT listing (price, area, contact)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT area (#PCDATA)>
<!ELEMENT contact (name)>
<!ELEMENT name (#PCDATA)>
"""

LISTINGS = """
<listing><price>1</price><area>Kent, WA</area>
  <contact><name>Ann</name></contact></listing>
<listing><price>1</price><area>Kent, WA</area>
  <contact><name>Ann</name></contact></listing>
"""


@pytest.fixture
def ctx():
    schema = SourceSchema(SCHEMA_TEXT)
    listings = parse_fragments(LISTINGS)
    return MatchContext(schema, extract_columns(schema, listings))


def row(**scores) -> np.ndarray:
    out = np.full(len(SPACE), 0.01)
    for label, value in scores.items():
        out[SPACE.index_of(label.replace("_", "-"))] = value
    return out / out.sum()


class TestAStar:
    def test_straight_line(self):
        # States 0..3, cost 1 per step.
        result = astar(
            0, lambda s: [(s + 1, 1.0)], lambda s: s == 3,
            lambda s: float(3 - s))
        assert result.found and result.state == 3
        assert result.cost == pytest.approx(3.0)

    def test_prefers_cheaper_path(self):
        # Two routes to the goal 'g': direct cost 5, detour cost 1+1.
        graph = {"s": [("g", 5.0), ("m", 1.0)], "m": [("g", 1.0)],
                 "g": []}
        result = astar("s", lambda s: graph[s], lambda s: s == "g",
                       lambda s: 0.0)
        assert result.cost == pytest.approx(2.0)

    def test_no_goal(self):
        result = astar(0, lambda s: [], lambda s: False, lambda s: 0.0)
        assert not result.found

    def test_budget_exhaustion_reported(self):
        result = astar(
            0, lambda s: [(s + 1, 1.0), (s + 2, 1.0)],
            lambda s: s >= 10_000, lambda s: 0.0, max_expansions=10)
        assert result.exhausted_budget

    def test_heuristic_guides_search(self):
        # With a perfect heuristic, expansion count stays linear.
        result = astar(
            0, lambda s: [(s + 1, 1.0), (s - 1, 1.0)],
            lambda s: s == 20, lambda s: float(abs(20 - s)))
        assert result.found
        assert result.expanded <= 50


class TestHandlerBasics:
    def test_no_constraints_is_argmax(self, ctx):
        handler = ConstraintHandler()
        scores = {
            "price": row(PRICE=0.9),
            "area": row(ADDRESS=0.8),
            "contact": row(AGENT_INFO=0.7),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert mapping["price"] == "PRICE"
        assert mapping["area"] == "ADDRESS"
        assert mapping["name"] == "AGENT-NAME"

    def test_empty_scores(self, ctx):
        assert len(ConstraintHandler().find_mapping({}, SPACE, ctx)) == 0

    def test_greedy_mapping(self, ctx):
        handler = ConstraintHandler()
        mapping = handler.greedy_mapping({"price": row(PRICE=0.9)}, SPACE)
        assert mapping["price"] == "PRICE"


class TestHandlerConstraints:
    def test_frequency_forces_second_best(self, ctx):
        """Two tags both prefer PRICE; at-most-one forces the weaker one
        to its runner-up label."""
        handler = ConstraintHandler(
            [FrequencyConstraint.at_most_one("PRICE")])
        scores = {
            "price": row(PRICE=0.9, ADDRESS=0.05),
            "area": row(PRICE=0.6, ADDRESS=0.39),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert mapping["price"] == "PRICE"
        assert mapping["area"] == "ADDRESS"

    def test_exactly_one_pulls_label_in(self, ctx):
        """No tag's argmax is PRICE but the domain requires one."""
        handler = ConstraintHandler(
            [FrequencyConstraint.exactly_one("PRICE")])
        scores = {
            "price": row(ADDRESS=0.5, PRICE=0.45),
            "area": row(ADDRESS=0.9),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert mapping["price"] == "PRICE"

    def test_nesting_constraint_steers(self, ctx):
        """AGENT-NAME must be nested in AGENT-INFO: the non-nested
        candidate (area) loses it to the nested one (name)."""
        handler = ConstraintHandler(
            [NestingConstraint("AGENT-INFO", "AGENT-NAME")])
        scores = {
            "price": row(PRICE=0.9),
            "area": row(AGENT_NAME=0.55, ADDRESS=0.44),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.6, OTHER=0.3),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert mapping["area"] == "ADDRESS"
        assert mapping["name"] == "AGENT-NAME"

    def test_key_constraint_uses_data(self, ctx):
        """'price' column has duplicate values, so a key-constrained label
        must go elsewhere (the paper's num-bedrooms/HOUSE-ID case)."""
        space = LabelSpace(["HOUSE-ID", "PRICE"])
        handler = ConstraintHandler([KeyConstraint("HOUSE-ID")])
        scores = {
            "price": np.array([0.6, 0.3, 0.1]),  # prefers HOUSE-ID
            "area": np.array([0.1, 0.2, 0.7]),
        }
        mapping = handler.find_mapping(scores, space, ctx)
        assert mapping["price"] != "HOUSE-ID"

    def test_soft_constraint_breaks_near_tie(self, ctx):
        handler = ConstraintHandler(
            [MaxCountSoftConstraint("PRICE", 1)],
            soft_weights={"binary": 10.0})
        scores = {
            "price": row(PRICE=0.9),
            "area": row(PRICE=0.51, ADDRESS=0.48),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert mapping["area"] == "ADDRESS"

    def test_feedback_assignment_pins(self, ctx):
        handler = ConstraintHandler()
        scores = {
            "price": row(PRICE=0.9),
            "area": row(ADDRESS=0.9),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(
            scores, SPACE, ctx,
            extra_constraints=[AssignmentConstraint("area", "OTHER")])
        assert mapping["area"] == "OTHER"
        assert mapping["price"] == "PRICE"

    def test_feedback_exclusion(self, ctx):
        handler = ConstraintHandler()
        scores = {
            "price": row(PRICE=0.9, ADDRESS=0.05),
            "area": row(ADDRESS=0.9),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(
            scores, SPACE, ctx,
            extra_constraints=[ExclusionConstraint("price", "PRICE")])
        assert mapping["price"] != "PRICE"

    def test_unsatisfiable_falls_back_to_greedy(self, ctx):
        handler = ConstraintHandler([
            FrequencyConstraint.exactly_one("PRICE"),
            FrequencyConstraint("PRICE", 0, 0) if False else
            ExclusionConstraint("price", "PRICE"),
            ExclusionConstraint("area", "PRICE"),
            ExclusionConstraint("contact", "PRICE"),
            ExclusionConstraint("name", "PRICE"),
        ])
        scores = {
            "price": row(PRICE=0.9),
            "area": row(ADDRESS=0.9),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }
        mapping = handler.find_mapping(scores, SPACE, ctx)
        # Greedy fallback: argmax assignment.
        assert mapping["price"] == "PRICE"


class TestHandlerDiagnostics:
    def test_violations_lists_broken_constraints(self, ctx):
        handler = ConstraintHandler(
            [FrequencyConstraint.at_most_one("PRICE"),
             MaxCountSoftConstraint("PRICE", 1)])
        from repro.core.mapping import Mapping
        mapping = Mapping({"price": "PRICE", "area": "PRICE",
                           "contact": "OTHER", "name": "OTHER"})
        violated = handler.violations(mapping, ctx)
        assert len(violated) == 2

    def test_mapping_cost_orders_candidates(self, ctx):
        from repro.core.mapping import Mapping
        handler = ConstraintHandler()
        scores = {"price": row(PRICE=0.9), "area": row(ADDRESS=0.9)}
        good = Mapping({"price": "PRICE", "area": "ADDRESS"})
        bad = Mapping({"price": "ADDRESS", "area": "PRICE"})
        assert handler.mapping_cost(good, scores, SPACE, ctx) < \
            handler.mapping_cost(bad, scores, SPACE, ctx)

    def test_mapping_cost_infinite_on_hard_violation(self, ctx):
        from repro.core.mapping import Mapping
        handler = ConstraintHandler(
            [FrequencyConstraint.at_most_one("PRICE")])
        scores = {"price": row(PRICE=0.9), "area": row(PRICE=0.9)}
        bad = Mapping({"price": "PRICE", "area": "PRICE"})
        assert handler.mapping_cost(bad, scores, SPACE, ctx) == \
            float("inf")

    def test_search_order_most_structured_first(self, ctx):
        handler = ConstraintHandler()
        order = handler._tag_order(["price", "contact", "name"], ctx)
        assert order[0] == "contact"

    def test_mapping_cost_honours_extra_constraints(self, ctx):
        """Regression: mapping_cost used to evaluate only the handler's
        own constraints, so a mapping that violated user feedback (an
        extra constraint) was costed as if it were fine."""
        from repro.core.mapping import Mapping
        handler = ConstraintHandler()
        scores = {"price": row(PRICE=0.9), "area": row(ADDRESS=0.9)}
        mapping = Mapping({"price": "PRICE", "area": "ADDRESS"})
        pinned = [AssignmentConstraint("area", "OTHER")]
        assert handler.mapping_cost(mapping, scores, SPACE, ctx) < \
            float("inf")
        assert handler.mapping_cost(mapping, scores, SPACE, ctx,
                                    extra_constraints=pinned) == \
            float("inf")

    def test_mapping_cost_extra_soft_constraints_add_cost(self, ctx):
        from repro.core.mapping import Mapping
        handler = ConstraintHandler(soft_weights={"binary": 10.0})
        scores = {"price": row(PRICE=0.9), "area": row(PRICE=0.8)}
        mapping = Mapping({"price": "PRICE", "area": "PRICE"})
        plain = handler.mapping_cost(mapping, scores, SPACE, ctx)
        softened = handler.mapping_cost(
            mapping, scores, SPACE, ctx,
            extra_constraints=[MaxCountSoftConstraint("PRICE", 1)])
        assert softened > plain
        assert softened < float("inf")


class TestHandlerAnytime:
    def _scores(self):
        return {
            "price": row(PRICE=0.9),
            "area": row(ADDRESS=0.9),
            "contact": row(AGENT_INFO=0.9),
            "name": row(AGENT_NAME=0.9),
        }

    def test_exhausted_budget_still_returns_complete_mapping(self, ctx):
        """The search is anytime: even with no expansion budget it must
        return the greedy-seeded best-so-far mapping covering every
        tag, not an empty or partial result."""
        handler = ConstraintHandler(max_expansions=0)
        mapping = handler.find_mapping(self._scores(), SPACE, ctx)
        assert set(dict(mapping.items())) == \
            {"price", "area", "contact", "name"}

    def test_tiny_budget_respects_feasible_greedy_seed(self, ctx):
        handler = ConstraintHandler(
            [FrequencyConstraint.at_most_one("PRICE")], max_expansions=1)
        mapping = handler.find_mapping(self._scores(), SPACE, ctx)
        assert mapping["price"] == "PRICE"
        assert mapping["name"] == "AGENT-NAME"

    def test_budget_never_worse_than_greedy(self, ctx):
        """More search can only improve (or match) the greedy cost."""
        scores = self._scores()
        greedy_cost = ConstraintHandler().mapping_cost(
            ConstraintHandler().greedy_mapping(scores, SPACE), scores,
            SPACE, ctx)
        for budget in (0, 1, 10, 100_000):
            handler = ConstraintHandler(max_expansions=budget)
            mapping = handler.find_mapping(scores, SPACE, ctx)
            assert handler.mapping_cost(mapping, scores, SPACE, ctx) <= \
                greedy_cost
