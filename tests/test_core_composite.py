"""Tests for complex-mapping detection and §7 error analysis."""

import pytest

from repro.core import Mapping, SourceSchema, extract_columns
from repro.core.composite import find_composite_mappings
from repro.evaluation.error_analysis import (AMBIGUOUS, MISRANKED,
                                             NO_TRAINING_DATA,
                                             analyze_errors,
                                             trained_label_set)
from repro.xmlio import parse_fragments

SCHEMA = SourceSchema("""
<!ELEMENT l (full, half, total, price, note)>
<!ELEMENT full (#PCDATA)>
<!ELEMENT half (#PCDATA)>
<!ELEMENT total (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT note (#PCDATA)>
""")


def columns_for(rows):
    """rows: list of (full, half, total, price) tuples."""
    text = "".join(
        f"<l><full>{f}</full><half>{h}</half><total>{t}</total>"
        f"<price>{p}</price><note>words only</note></l>"
        for f, h, t, p in rows)
    return extract_columns(SCHEMA, parse_fragments(text))


BASE_MAPPING = Mapping({"full": "FULL-BATHS", "half": "HALF-BATHS",
                        "total": "OTHER", "price": "PRICE",
                        "note": "OTHER"})


class TestCompositeDetection:
    def test_detects_sum(self):
        """The paper's example: num-baths = half-baths + full-baths."""
        rows = [(2, 1, 3, 100), (1, 0, 1, 90), (3, 2, 5, 150),
                (2, 2, 4, 120), (1, 1, 2, 80), (4, 0, 4, 200)]
        composites = find_composite_mappings(columns_for(rows),
                                             BASE_MAPPING)
        assert len(composites) == 1
        found = composites[0]
        assert found.tag == "total"
        assert set(found.part_tags) == {"full", "half"}
        assert set(found.part_labels) == {"FULL-BATHS", "HALF-BATHS"}
        assert found.support == 1.0
        assert "FULL-BATHS + HALF-BATHS" in found.describe() or \
            "HALF-BATHS + FULL-BATHS" in found.describe()

    def test_no_false_positive_without_relationship(self):
        rows = [(2, 1, 9, 100), (1, 0, 7, 90), (3, 2, 2, 150),
                (2, 2, 8, 120), (1, 1, 5, 80), (4, 0, 1, 200)]
        assert find_composite_mappings(columns_for(rows),
                                       BASE_MAPPING) == []

    def test_tolerates_minority_noise(self):
        rows = [(2, 1, 3, 100), (1, 0, 1, 90), (3, 2, 5, 150),
                (2, 2, 4, 120), (1, 1, 2, 80), (4, 0, 4, 200),
                (2, 1, 3, 100), (1, 2, 3, 95), (3, 1, 4, 140),
                (2, 0, 9, 110)]  # one disagreeing listing out of ten
        composites = find_composite_mappings(columns_for(rows),
                                             BASE_MAPPING,
                                             min_support=0.85)
        assert len(composites) == 1
        assert composites[0].support == pytest.approx(0.9)

    def test_mapped_tags_not_searched(self):
        # 'total' already has a 1-1 label: nothing to explain.
        mapping = BASE_MAPPING.with_assignment("total", "BATHS")
        rows = [(2, 1, 3, 100), (1, 0, 1, 90), (3, 2, 5, 150),
                (2, 2, 4, 120), (1, 1, 2, 80), (4, 0, 4, 200)]
        assert find_composite_mappings(columns_for(rows), mapping) == []

    def test_min_listings_guard(self):
        rows = [(2, 1, 3, 100), (1, 0, 1, 90)]
        assert find_composite_mappings(columns_for(rows), BASE_MAPPING,
                                       min_listings=5) == []

    def test_non_numeric_columns_ignored(self):
        rows = [(2, 1, 3, 100), (1, 0, 1, 90), (3, 2, 5, 150),
                (2, 2, 4, 120), (1, 1, 2, 80), (4, 0, 4, 200)]
        composites = find_composite_mappings(columns_for(rows),
                                             BASE_MAPPING)
        assert all("note" not in c.part_tags for c in composites)


class TestErrorAnalysis:
    def make_result(self, mapping_dict, scores):
        import numpy as np
        from repro.constraints import MatchContext
        from repro.core import LabelSpace
        from repro.core.matching import MatchResult

        space = LabelSpace(["A", "B", "SUBURB"])
        tag_scores = {
            tag: np.array(row) for tag, row in scores.items()}
        return MatchResult(Mapping(mapping_dict), tag_scores, space, {},
                           MatchContext(SCHEMA))

    def test_buckets(self):
        result = self.make_result(
            {"full": "A", "half": "B", "total": "A"},
            {
                "full": [0.9, 0.05, 0.03, 0.02],    # confident, wrong
                "half": [0.05, 0.48, 0.45, 0.02],   # ambiguous, wrong
                "total": [0.8, 0.1, 0.05, 0.05],    # truth never trained
            })
        truth = Mapping({"full": "B", "half": "SUBURB",
                         "total": "SUBURB"})
        report = analyze_errors(result, truth,
                                trained_labels={"A", "B"})
        causes = {e.tag: e.cause for e in report.errors}
        assert causes["full"] == MISRANKED
        assert causes["total"] == NO_TRAINING_DATA
        # 'half' truth (SUBURB) is untrained too — that bucket wins even
        # though the prediction is also ambiguous.
        assert causes["half"] == NO_TRAINING_DATA
        assert report.by_cause()[NO_TRAINING_DATA] == 2

    def test_ambiguous_bucket(self):
        result = self.make_result(
            {"full": "A"},
            {"full": [0.45, 0.44, 0.06, 0.05]})
        truth = Mapping({"full": "B"})
        report = analyze_errors(result, truth,
                                trained_labels={"A", "B"})
        assert report.errors[0].cause == AMBIGUOUS

    def test_correct_tags_not_reported(self):
        result = self.make_result(
            {"full": "A"}, {"full": [0.9, 0.05, 0.03, 0.02]})
        truth = Mapping({"full": "A"})
        report = analyze_errors(result, truth, trained_labels={"A"})
        assert len(report) == 0

    def test_trained_label_set(self):
        from repro.datasets import load_domain
        from repro.evaluation import SystemConfig, build_system

        domain = load_domain("faculty", seed=0)
        system = build_system(domain, SystemConfig("complete"),
                              max_instances_per_tag=10)
        system.add_training_source(domain.sources[0].schema,
                                   domain.sources[0].listings(10),
                                   domain.sources[0].mapping)
        labels = trained_label_set(system)
        assert "FIRST-NAME" in labels
