"""Engine-level tests: suppression comments, the baseline multiset,
JSON artifacts, file discovery, and the lsd-lint CLI exit codes."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (SourceFile, analyze_paths,
                                   analyze_sources, get_rules,
                                   iter_python_files, rule_ids)
from repro.analysis.findings import (Baseline, Finding, findings_to_json,
                                     sort_findings)

WALLCLOCK_BAD = """\
import time

def stamp():
    return time.time()
"""

CLEAN = """\
def double(x):
    return x * 2
"""


def _source(code: str, display: str = "src/repro/example.py"
            ) -> SourceFile:
    return SourceFile(Path(display), display, textwrap.dedent(code))


class TestSuppressions:
    def test_bracketed_suppression_silences_listed_rule(self):
        source = _source("""\
            import time
            t = time.time()  # lsd: ignore[wallclock]
            """)
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert result.findings == []

    def test_bare_ignore_silences_every_rule(self):
        source = _source("""\
            import time, random
            t = time.time(); random.random()  # lsd: ignore
            """)
        result = analyze_sources(
            [source], rules=get_rules(["wallclock", "unseeded-random"]))
        assert result.findings == []

    def test_unrelated_rule_id_does_not_suppress(self):
        source = _source("""\
            import time
            t = time.time()  # lsd: ignore[blind-except]
            """)
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert len(result.findings) == 1

    def test_suppression_is_line_scoped(self):
        source = _source("""\
            import time
            a = time.time()  # lsd: ignore[wallclock]
            b = time.time()
            """)
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert [f.line for f in result.findings] == [3]

    def test_closing_paren_comment_covers_the_statement(self):
        # The finding is reported at the call's first line; the
        # suppression sits two lines down on the closing paren.
        source = _source("""\
            import time
            t = time.time(
                # spread over lines
            )  # lsd: ignore[wallclock]
            """)
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert result.findings == []

    def test_decorator_line_comment_covers_the_def_header(self):
        source = _source("""\
            @property  # lsd: ignore[wallclock]
            def f(self):
                pass
            """)
        # The span runs from the decorator through the def header but
        # stops before the body.
        assert source.suppressions.get(1) == {"wallclock"}
        assert source.suppressions.get(2) == {"wallclock"}
        assert source.suppressions.get(3) is None

    def test_span_does_not_leak_into_compound_body(self):
        source = _source("""\
            import time
            if (True
                    or False):  # lsd: ignore[wallclock]
                t = time.time()
            """)
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert [f.line for f in result.findings] == [4]

    def test_bare_ignore_dominates_merged_span(self):
        source = _source("""\
            import time
            t = max(  # lsd: ignore[wallclock]
                time.time(),
            )  # lsd: ignore
            """)
        # The bare ignore and the listed one merge over the statement's
        # span; bare wins, silencing every rule on every covered line.
        assert source.suppressions.get(2) == set()
        assert source.suppressions.get(3) == set()
        result = analyze_sources([source],
                                 rules=get_rules(["wallclock"]))
        assert result.findings == []


class TestBaseline:
    def _findings(self):
        return [
            Finding("src/a.py", 3, "wallclock", "msg one", "warning"),
            Finding("src/a.py", 9, "wallclock", "msg one", "warning"),
            Finding("src/b.py", 1, "blind-except", "msg two"),
        ]

    def test_round_trip_through_file(self, tmp_path):
        baseline = Baseline.from_findings(self._findings())
        path = tmp_path / "analysis-baseline.txt"
        baseline.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        new, accepted = loaded.split(self._findings())
        assert new == []
        assert len(accepted) == 3

    def test_entries_are_a_multiset(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings[:1])
        new, accepted = baseline.split(findings[:2])
        # One entry absorbs one of the two identical findings.
        assert len(accepted) == 1 and len(new) == 1

    def test_line_shifts_do_not_invalidate_entries(self):
        baseline = Baseline.from_findings(
            [Finding("src/a.py", 3, "wallclock", "msg one", "warning")])
        shifted = [Finding("src/a.py", 77, "wallclock", "msg one",
                           "warning")]
        new, accepted = baseline.split(shifted)
        assert new == [] and len(accepted) == 1

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only-two | fields\n")
        with pytest.raises(ValueError, match="malformed baseline"):
            Baseline.load(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# comment\n\nsrc/a.py | r | m\n")
        assert len(Baseline.load(path)) == 1


class TestFindings:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding("a.py", 1, "r", "m", "fatal")

    def test_render_and_sort(self):
        findings = [Finding("b.py", 2, "r", "m"),
                    Finding("a.py", 9, "r", "m"),
                    Finding("a.py", 2, "r", "m")]
        ordered = sort_findings(findings)
        assert [(f.path, f.line) for f in ordered] == \
            [("a.py", 2), ("a.py", 9), ("b.py", 2)]
        assert ordered[0].render() == "a.py:2: error [r] m"

    def test_json_artifact_summary(self):
        payload = json.loads(findings_to_json(
            [Finding("a.py", 1, "wallclock", "m", "warning"),
             Finding("a.py", 2, "blind-except", "n")],
            baselined=3))
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["baselined"] == 3
        assert payload["summary"]["by_rule"] == \
            {"wallclock": 1, "blind-except": 1}
        assert payload["summary"]["by_severity"] == \
            {"warning": 1, "error": 1}

    def test_dict_round_trip(self):
        finding = Finding("a.py", 1, "r", "m", "warning")
        assert Finding.from_dict(finding.as_dict()) == finding


class TestDiscoveryAndParseErrors:
    def test_iter_python_files_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path, tmp_path / "pkg"]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_unparseable_file_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = analyze_paths([bad])
        assert not result.ok
        assert result.findings[0].rule == "parse-error"

    def test_rule_registry_is_complete(self):
        assert set(rule_ids()) == {
            "unseeded-random", "wallclock", "set-iteration",
            "executor-shared-write", "process-unsafe-state",
            "learner-contract",
            "metric-catalogue", "event-catalogue", "span-unclosed",
            "blind-except", "fault-site-catalogue",
            "flow-nondeterministic-path", "flow-worker-shared-write",
            "flow-fault-unhandled", "flow-unresolved-hot-call",
            "flow-observer-gap", "checkpoint-unregistered-state"}

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["bogus-rule"])

    def test_glob_selection_expands_over_rule_ids(self):
        assert {rule.id for rule in get_rules(["metric-*"])} == \
            {"metric-catalogue"}
        flow = {rule.id for rule in get_rules(["flow-*"])}
        assert flow == {
            "flow-nondeterministic-path", "flow-worker-shared-write",
            "flow-fault-unhandled", "flow-unresolved-hot-call",
            "flow-observer-gap"}

    def test_glob_matching_nothing_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["zzz-*"])


class TestCli:
    def _write(self, tmp_path, name, code):
        path = tmp_path / name
        path.write_text(textwrap.dedent(code))
        return path

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "clean.py", CLEAN)
        assert lint_main([str(path), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        assert lint_main([str(path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[wallclock]" in out and "finding" in out

    def test_missing_path_exits_two(self, tmp_path):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_unknown_rule_exits_two(self, tmp_path):
        path = self._write(tmp_path, "clean.py", CLEAN)
        assert lint_main([str(path), "--select", "bogus"]) == 2

    def test_select_narrows_the_rule_set(self, tmp_path):
        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        assert lint_main([str(path), "--no-baseline",
                          "--select", "blind-except"]) == 0

    def test_select_glob_pattern(self, tmp_path):
        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        assert lint_main([str(path), "--no-baseline",
                          "--select", "metric-*"]) == 0
        assert lint_main([str(path), "--no-baseline",
                          "--select", "wall*"]) == 1

    def test_unknown_glob_exits_two(self, tmp_path):
        path = self._write(tmp_path, "clean.py", CLEAN)
        assert lint_main([str(path), "--select", "zzz-*"]) == 2

    def test_list_rules_prints_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out
        # Per-file and flow rules are labelled as such.
        assert " file " in out and " flow " in out

    def test_json_artifact_written(self, tmp_path):
        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        artifact = tmp_path / "findings.json"
        assert lint_main([str(path), "--no-baseline",
                          "--json", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["summary"]["total"] == 1
        assert payload["findings"][0]["rule"] == "wallclock"

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("")
        assert lint_main([str(path), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        assert "wrote 1 accepted" in capsys.readouterr().out
        # The same finding is now baselined, so the gate passes...
        assert lint_main([str(path), "--baseline",
                          str(baseline)]) == 0
        # ...but a fresh violation still fails it.
        path.write_text(WALLCLOCK_BAD + "\nstamp2 = time.time()\n")
        assert lint_main([str(path), "--baseline",
                          str(baseline)]) == 1

    def test_explicit_missing_baseline_fails_fast(self, tmp_path):
        path = self._write(tmp_path, "clean.py", CLEAN)
        with pytest.raises(SystemExit, match="does not exist"):
            lint_main([str(path), "--baseline",
                       str(tmp_path / "absent.txt")])

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in rule_ids():
            assert rule in out

    def test_repro_analyze_forwards_verbatim(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        path = self._write(tmp_path, "bad.py", WALLCLOCK_BAD)
        assert repro_main(["analyze", "--list-rules"]) == 0
        capsys.readouterr()
        assert repro_main(["analyze", str(path),
                           "--no-baseline"]) == 1
        assert "[wallclock]" in capsys.readouterr().out
