"""Unit tests for :mod:`repro.runtime.checkpoint` and the durability
contract of the atomic artifact layer it builds on: keys, manifests,
stage roundtrips, absorbed write faults, and never-torn files."""

import importlib
import json
import os
import threading

import numpy as np
import pytest

from repro.observability import artifacts
from repro.observability.artifacts import (atomic_write_bytes,
                                           atomic_write_text)
from repro.observability.ledger import build_entry, check_ledger
from repro.resilience import (FaultPlan, FaultSpec, ResiliencePolicy,
                              SITE_ARTIFACT_WRITE)
from repro.runtime import (Checkpointer, REGISTERED_MUTABLE_STATE,
                           run_key)
from repro.runtime.checkpoint import (STAGE_CONSTRAIN, STAGE_EXTRACT,
                                      STAGE_PREDICT, STAGES)


# ---------------------------------------------------------------------------
# run keys
# ---------------------------------------------------------------------------

class TestRunKey:
    def test_deterministic_and_short(self):
        key = run_key("fp", search="bnb", feedback=["a=B"],
                      settings={"input_mode": "strict"})
        assert key == run_key("fp", search="bnb", feedback=["a=B"],
                              settings={"input_mode": "strict"})
        assert len(key) == 16
        int(key, 16)  # hex

    def test_output_affecting_knobs_change_the_key(self):
        base = run_key("fp")
        assert run_key("other") != base
        assert run_key("fp", search="astar") != base
        assert run_key("fp", feedback=["price=PRICE"]) != base
        assert run_key("fp", settings={"max_instances": 5}) != base

    def test_feedback_order_is_canonicalized(self):
        assert run_key("fp", feedback=["a=X", "b=Y"]) == \
            run_key("fp", feedback=["b=Y", "a=X"])

    def test_workers_and_backend_are_not_parameters(self):
        # Output is byte-identical across parallelism, so the key
        # signature deliberately has no worker/backend knobs: a run
        # may resume under different parallelism than it started.
        import inspect

        params = inspect.signature(run_key).parameters
        assert "workers" not in params
        assert "backend" not in params


# ---------------------------------------------------------------------------
# the checkpointer
# ---------------------------------------------------------------------------

class TestCheckpointer:
    def test_open_writes_a_versioned_manifest(self, tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        manifest = json.loads(
            (tmp_path / "k1" / "MANIFEST.json").read_text())
        assert manifest["kind"] == "lsd-checkpoint"
        assert manifest["run_key"] == "k1"
        assert manifest["attempt"] == 1
        assert manifest["run_id"] == "k1-a1"
        assert manifest["stages"] == []
        assert ck.run_id == "k1-a1"
        assert not any(ck.has(stage) for stage in STAGES)

    def test_extract_commits_a_provenance_marker(self, tmp_path):
        """The extract checkpoint records per-tag instance counts, not
        the column payload — columns re-derive deterministically from
        the run's durable inputs (see the module docstring)."""
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        columns = {"price": ["$100", "$200"], "agent": ["Ann Lee"]}
        assert ck.save_columns(columns) is True
        assert ck.has(STAGE_EXTRACT)
        marker = json.loads((tmp_path / "k1" / "columns.json")
                            .read_text())
        assert marker == {"instances": {"agent": 1, "price": 2}}
        # Already committed: the resumed attempt skips the re-write.
        assert ck.save_columns(columns) is False
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        assert fresh.has(STAGE_EXTRACT)
        assert fresh.save_columns(columns) is False

    def test_scores_roundtrip_and_shape_validation(self, tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        scores = np.arange(12, dtype=np.float64).reshape(4, 3)
        assert ck.save_learner_scores("naive bayes", scores) is True
        ck.commit_predict()
        assert ck.has(STAGE_PREDICT)
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        loaded = fresh.load_scores(n_rows=4)
        assert set(loaded) == {"naive bayes"}
        np.testing.assert_array_equal(loaded["naive bayes"], scores)
        assert loaded["naive bayes"].dtype == scores.dtype
        # A matrix persisted for a different batch size never leaks in.
        assert fresh.load_scores(n_rows=7) == {}

    def test_learner_saves_survive_a_partial_predict_stage(self,
                                                           tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        ck.save_learner_scores("nb", np.ones((2, 2)))
        # No commit_predict: the stage is incomplete, but the one
        # finished learner is individually resumable.
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        assert not fresh.has(STAGE_PREDICT)
        assert set(fresh.load_scores(n_rows=2)) == {"nb"}

    def test_mapping_roundtrip(self, tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        assert ck.save_mapping({"b": "Y", "a": "X"}) is True
        assert ck.has(STAGE_CONSTRAIN)
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        assert fresh.load_mapping() == {"a": "X", "b": "Y"}

    def test_incumbent_roundtrips_floats_exactly(self, tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        cost = 0.1 + 0.2  # a float whose repr must survive the trip
        ck.save_incumbent(cost, (0, 3, 1), {"price": "PRICE"})
        loaded = ck.load_incumbent()
        assert loaded == (cost, (0, 3, 1), {"price": "PRICE"})
        assert loaded[0] == cost  # bitwise, not approximately

    def test_incumbent_writes_are_deduplicated(self, tmp_path):
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=False)
        writes = []
        original = ck._write_text
        ck._write_text = lambda name, text: writes.append(name) or \
            original(name, text)
        ck.save_incumbent(2.0, (1, 2), {"a": "X"})
        ck.save_incumbent(2.0, (1, 2), {"a": "X"})  # unchanged: no IO
        ck.save_incumbent(1.0, (1, 1), {"a": "Y"})
        ck.save_incumbent(1.5, (2, 2), None)  # no assignment: ignored
        assert writes == ["incumbent.json", "incumbent.json"]

    def test_resume_bumps_attempt_and_records_lineage(self, tmp_path):
        first = Checkpointer(tmp_path, "k1")
        first.open(resume=False)
        first.save_columns({"t": ["v"]})
        second = Checkpointer(tmp_path, "k1")
        second.open(resume=True)
        assert second.run_id == "k1-a2"
        assert second.resumed_from == "k1-a1"
        assert second.has(STAGE_EXTRACT)
        third = Checkpointer(tmp_path, "k1")
        third.open(resume=False)  # fresh run: stages reset,
        assert third.manifest["stages"] == []  # ids never repeat
        assert third.run_id == "k1-a3"
        assert third.resumed_from is None

    def test_foreign_or_corrupt_manifest_starts_fresh(self, tmp_path):
        other = Checkpointer(tmp_path, "other-key")
        other.open(resume=False)
        other.save_columns({"t": ["v"]})
        (tmp_path / "k1").mkdir()
        (tmp_path / "k1" / "MANIFEST.json").write_text("{not json")
        ck = Checkpointer(tmp_path, "k1")
        ck.open(resume=True)
        assert ck.resumed_from is None
        assert ck.manifest["stages"] == []

    def test_write_fault_is_absorbed_never_torn(self, tmp_path):
        """An ``artifact.write`` fault during a checkpoint save is a
        recorded degradation: the save reports failure, the stage is
        not committed, and no torn or temp file is left behind."""
        policy = ResiliencePolicy()
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_ARTIFACT_WRITE, key="columns.json"),))
        ck = Checkpointer(tmp_path, "k1", plan=plan,
                          report=policy.report)
        ck.open(resume=False)
        assert ck.save_columns({"t": ["v"]}) is False
        assert not ck.has(STAGE_EXTRACT)
        lost = [f["artifact"] for f in
                policy.report.artifact_failures]
        assert lost == ["checkpoint:columns.json"]
        assert sorted(p.name for p in (tmp_path / "k1").iterdir()) == \
            ["MANIFEST.json"]  # no marker, no temp litter

    def test_scores_write_fault_keeps_learner_out_of_manifest(
            self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_ARTIFACT_WRITE, key="scores_nb.bin"),))
        ck = Checkpointer(tmp_path, "k1", plan=plan)
        ck.open(resume=False)
        assert ck.save_learner_scores("nb", np.ones((2, 2))) is False
        assert ck.manifest["scores"] == {}
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        assert fresh.load_scores(n_rows=2) == {}

    def test_background_writer_drains_in_order(self, tmp_path):
        """The CLI's mode: saves return immediately, the writer thread
        lands payload-then-commit in submission order, and ``flush``
        waits for durability."""
        ck = Checkpointer(tmp_path, "k1", background=True)
        try:
            ck.open(resume=False)
            assert ck.save_columns({"t": ["v"]}) is True  # scheduled
            assert ck.save_learner_scores("nb", np.ones((2, 2))) is True
            ck.commit_predict()
            assert ck.save_mapping({"t": "X"}) is True
            assert ck.flush(timeout=30.0)
            assert ck.has(STAGE_EXTRACT)
            assert ck.has(STAGE_PREDICT)
            assert ck.has(STAGE_CONSTRAIN)
            fresh = Checkpointer(tmp_path, "k1")
            fresh.open(resume=True)
            assert fresh.manifest["stages"] == \
                ["extract", "predict", "constrain"]
            assert set(fresh.load_scores(n_rows=2)) == {"nb"}
            assert fresh.load_mapping() == {"t": "X"}
        finally:
            ck.close()
        ck.close()  # idempotent

    def test_background_snapshot_is_immune_to_later_mutation(
            self, tmp_path):
        """Score matrices are copied on the caller's thread before the
        enqueue — later in-place rescaling (structure passes) must not
        leak into the persisted bytes."""
        ck = Checkpointer(tmp_path, "k1", background=True)
        try:
            ck.open(resume=False)
            scores = np.ones((2, 2))
            ck.save_learner_scores("nb", scores)
            scores *= 7.0  # the live array moves on immediately
            assert ck.flush(timeout=30.0)
        finally:
            ck.close()
        fresh = Checkpointer(tmp_path, "k1")
        fresh.open(resume=True)
        np.testing.assert_array_equal(
            fresh.load_scores(n_rows=2)["nb"], np.ones((2, 2)))

    def test_background_write_fault_is_absorbed(self, tmp_path):
        policy = ResiliencePolicy()
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_ARTIFACT_WRITE, key="columns.json"),))
        ck = Checkpointer(tmp_path, "k1", plan=plan,
                          report=policy.report, background=True)
        try:
            ck.open(resume=False)
            ck.save_columns({"t": ["v"]})
            assert ck.flush(timeout=30.0)
        finally:
            ck.close()
        assert not ck.has(STAGE_EXTRACT)
        lost = [f["artifact"] for f in policy.report.artifact_failures]
        assert lost == ["checkpoint:columns.json"]

    def test_registered_state_entries_resolve(self):
        """Every registry entry names a real module attribute — a
        renamed cache cannot silently rot the allowlist."""
        for qualname, reason in REGISTERED_MUTABLE_STATE.items():
            module_name, attr = qualname.rsplit(".", 1)
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), qualname
            assert reason  # the why is part of the contract


# ---------------------------------------------------------------------------
# artifact-layer durability
# ---------------------------------------------------------------------------

class TestArtifactDurability:
    def test_concurrent_writers_leave_one_complete_file(self,
                                                        tmp_path):
        path = tmp_path / "shared.json"
        contents = [f'{{"writer": {i}, "pad": "{"x" * 512}"}}'
                    for i in range(8)]
        barrier = threading.Barrier(len(contents))

        def write(text):
            barrier.wait()
            for _ in range(20):
                atomic_write_text(path, text)

        threads = [threading.Thread(target=write, args=(text,))
                   for text in contents]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert path.read_text() in contents  # whole, never interleaved
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_fsync_happens_before_rename(self, tmp_path, monkeypatch):
        """The durability ordering checkpoints rely on: data reaches
        disk before the name flips to the new version."""
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            artifacts.os, "fsync",
            lambda fd: calls.append("fsync") or real_fsync(fd))
        monkeypatch.setattr(
            artifacts.os, "replace",
            lambda a, b: calls.append("replace") or real_replace(a, b))
        atomic_write_bytes(tmp_path / "data.bin", b"payload")
        assert "fsync" in calls and "replace" in calls
        assert calls.index("fsync") < calls.index("replace")
        assert (tmp_path / "data.bin").read_bytes() == b"payload"

    def test_process_death_mode_skips_fsync_but_stays_atomic(
            self, tmp_path, monkeypatch):
        """``durable=False`` — the checkpoint write path — sheds the
        storage round-trip while keeping the rename contract: the
        destination is complete-or-absent and no temp litter
        remains."""
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            artifacts.os, "fsync",
            lambda fd: calls.append("fsync") or real_fsync(fd))
        atomic_write_text(tmp_path / "marker.json", '{"ok": true}\n',
                          durable=False)
        atomic_write_bytes(tmp_path / "shard.bin", b"rows",
                           durable=False)
        assert calls == []
        assert (tmp_path / "marker.json").read_text() == '{"ok": true}\n'
        assert (tmp_path / "shard.bin").read_bytes() == b"rows"
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["marker.json", "shard.bin"]


# ---------------------------------------------------------------------------
# resume-aware ledger
# ---------------------------------------------------------------------------

class TestLedgerResumeExclusion:
    @staticmethod
    def _entry(created, total, **kwargs):
        return build_entry(label="match", fingerprint="fp",
                           created=created,
                           timings={"total": total}, **kwargs)

    def test_build_entry_carries_run_lineage(self):
        entry = self._entry(1.0, 2.0, run_id="k-a2",
                            resumed_from="k-a1")
        assert entry["run_id"] == "k-a2"
        assert entry["resumed_from"] == "k-a1"
        plain = self._entry(1.0, 2.0)
        assert "run_id" not in plain and "resumed_from" not in plain

    def test_resumed_entries_never_poison_the_baseline(self, tmp_path):
        """A resumed run only timed the stages it actually ran; its
        fast partial totals are excluded from both the baseline and
        the gated newest entry."""
        path = tmp_path / "ledger.jsonl"
        lines = [self._entry(1.0, 10.0), self._entry(2.0, 10.5),
                 # a crashed-then-resumed rerun, 50x "faster":
                 self._entry(3.0, 0.2, run_id="k-a2",
                             resumed_from="k-a1"),
                 self._entry(4.0, 10.2)]
        path.write_text("".join(json.dumps(e) + "\n" for e in lines))
        ok, text = check_ledger(path)
        assert ok, text
        assert "vs 2 baseline run(s)" in text

    def test_only_resumed_series_has_nothing_comparable(self,
                                                        tmp_path):
        path = tmp_path / "ledger.jsonl"
        entry = self._entry(1.0, 0.2, run_id="k-a2",
                            resumed_from="k-a1")
        path.write_text(json.dumps(entry) + "\n")
        ok, text = check_ledger(path)
        assert ok
        assert "only resumed partial run(s)" in text
