"""Tests for the paired bootstrap significance machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (Comparison, DomainResult, compare,
                              paired_bootstrap)


class TestPairedBootstrap:
    def test_clear_improvement_is_significant(self):
        a = [0.5] * 30
        b = [0.8] * 30
        result = paired_bootstrap(a, b)
        assert result.delta == pytest.approx(0.3)
        assert result.p_value == 0.0
        assert result.significant

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(0)
        a = list(rng.uniform(0.6, 0.9, size=40))
        # b is a shuffled-noise version of a with zero mean shift.
        b = [x + e for x, e in
             zip(a, rng.normal(0.0, 0.05, size=40))]
        result = paired_bootstrap(a, b, seed=1)
        assert not result.significant or abs(result.delta) > 0.0

    def test_regression_detected_as_nonsignificant_improvement(self):
        a = [0.8] * 20
        b = [0.6] * 20
        result = paired_bootstrap(a, b)
        assert result.delta < 0
        assert result.p_value == 1.0
        assert not result.significant

    def test_mixed_small_sample(self):
        a = [0.7, 0.8, 0.6, 0.9]
        b = [0.75, 0.78, 0.72, 0.88]
        result = paired_bootstrap(a, b, seed=3)
        assert 0.0 <= result.p_value <= 1.0

    def test_deterministic_given_seed(self):
        a = [0.7, 0.8, 0.6]
        b = [0.72, 0.81, 0.66]
        first = paired_bootstrap(a, b, seed=5)
        second = paired_bootstrap(a, b, seed=5)
        assert first.p_value == second.p_value

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_bootstrap([0.5], [0.5, 0.6])

    def test_empty(self):
        with pytest.raises(ValueError):
            paired_bootstrap([], [])

    def test_describe(self):
        result = paired_bootstrap([0.5] * 10, [0.7] * 10)
        assert "+20.0pp" in result.describe()
        assert "significant" in result.describe()

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=30),
           st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_p_value_bounded(self, values, seed):
        result = paired_bootstrap(values, values, seed=seed,
                                  resamples=200)
        assert 0.0 <= result.p_value <= 1.0
        assert result.delta == pytest.approx(0.0)


class TestCompareDomainResults:
    def test_compare_wires_observations(self):
        a = DomainResult("d", "base")
        b = DomainResult("d", "better")
        for value in (0.6, 0.62, 0.58, 0.61):
            a.record("s", value)
        for value in (0.8, 0.82, 0.78, 0.81):
            b.record("s", value)
        result = compare(a, b)
        assert isinstance(result, Comparison)
        assert result.significant
        assert result.mean_b > result.mean_a
