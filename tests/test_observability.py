"""Tests for the per-stage timers and counters."""

import json
import pickle

from repro.observability import StageProfile, format_profile_table


class TestStageProfile:
    def test_stage_records_elapsed_time(self):
        profile = StageProfile()
        with profile.stage("extract"):
            sum(range(1000))
        assert profile.seconds("extract") > 0.0

    def test_timings_accumulate_per_path(self):
        profile = StageProfile()
        profile.add_time("predict", 0.25)
        profile.add_time("predict", 0.5)
        assert profile.seconds("predict") == 0.75

    def test_unknown_path_is_zero(self):
        assert StageProfile().seconds("nope") == 0.0

    def test_counters(self):
        profile = StageProfile()
        profile.count("instances", 10)
        profile.count("instances", 5)
        profile.count("passes")
        assert profile.counters == {"instances": 15, "passes": 1}

    def test_top_level_total_ignores_nested_paths(self):
        profile = StageProfile()
        profile.add_time("predict", 2.0)
        profile.add_time("predict.learner.whirl", 1.5)
        profile.add_time("extract", 1.0)
        assert profile.top_level_total() == 3.0

    def test_snapshots_are_copies(self):
        profile = StageProfile()
        profile.add_time("a", 1.0)
        snapshot = profile.timings
        snapshot["a"] = 99.0
        assert profile.seconds("a") == 1.0

    def test_as_dict_and_json(self):
        profile = StageProfile()
        profile.add_time("extract", 0.5)
        profile.count("tags", 3)
        data = json.loads(profile.to_json())
        assert data["timings"]["extract"] == 0.5
        assert data["counters"]["tags"] == 3

    def test_merge_accumulates(self):
        main, worker = StageProfile(), StageProfile()
        main.add_time("predict", 1.0)
        main.count("instances", 10)
        worker.add_time("predict", 0.5)
        worker.add_time("extract", 0.25)
        worker.count("instances", 5)
        assert main.merge(worker) is main
        assert main.seconds("predict") == 1.5
        assert main.seconds("extract") == 0.25
        assert main.counters == {"instances": 15}

    def test_merge_empty_is_noop(self):
        main = StageProfile()
        main.add_time("a", 1.0)
        main.merge(StageProfile())
        assert main.timings == {"a": 1.0}

    def test_top_level_total_with_only_dotted_paths(self):
        # A chain timed only at the leaf rolls all the way up.
        profile = StageProfile()
        profile.add_time("predict.learner.whirl", 1.0)
        profile.add_time("predict.learner.bayes", 0.5)
        assert profile.top_level_total() == 1.5

    def test_pickle_round_trip(self):
        profile = StageProfile()
        profile.add_time("extract", 0.5)
        profile.count("tags", 3)
        clone = pickle.loads(pickle.dumps(profile))
        assert clone.as_dict() == profile.as_dict()
        clone.add_time("extract", 0.5)  # lock survives the round trip
        assert clone.seconds("extract") == 1.0


class TestProfileTable:
    def _profile(self) -> StageProfile:
        profile = StageProfile()
        profile.add_time("predict", 2.0)
        profile.add_time("predict.learner.whirl", 1.2)
        profile.add_time("predict.learner.bayes", 0.4)
        profile.add_time("extract", 0.5)
        profile.count("instances", 100)
        return profile

    def test_contains_all_stages_and_counters(self):
        table = format_profile_table(self._profile())
        for fragment in ("predict", "whirl", "bayes", "extract",
                         "instances", "100"):
            assert fragment in table

    def test_children_indented_under_parent(self):
        lines = format_profile_table(self._profile()).splitlines()
        names = [line.split()[0] for line in lines[2:] if line.strip()]
        # predict first (slowest top-level), its children right after.
        assert names[0] == "predict"
        assert set(names[1:3]) == {"learner", "whirl"} or \
            "learner" in names[1]

    def test_implicit_parent_sums_children(self):
        table = format_profile_table(self._profile())
        # 'predict.learner' was never timed itself; its implicit row
        # shows the children's sum (1.2 + 0.4).
        learner_line = next(line for line in table.splitlines()
                            if line.strip().startswith("learner"))
        assert "1.6000s" in learner_line

    def test_share_column_sums_against_top_level(self):
        table = format_profile_table(self._profile())
        extract_line = next(line for line in table.splitlines()
                            if line.strip().startswith("extract"))
        assert "20.0%" in extract_line  # 0.5 of 2.5 top-level seconds

    def test_empty_profile_renders(self):
        table = format_profile_table(StageProfile())
        assert "stage" in table

    def test_shares_render_with_only_dotted_paths(self):
        # Before the implicit-chain fix, a profile holding only deep
        # dotted paths produced a zero denominator and dash shares.
        profile = StageProfile()
        profile.add_time("predict.learner.whirl", 1.0)
        table = format_profile_table(profile)
        assert "100.0%" in table
        assert "    -" not in table
