"""Shared test helpers for building instances, schemas and listings."""

from __future__ import annotations

from repro.core.instance import ElementInstance
from repro.core.labels import LabelSpace
from repro.xmlio import Element


def make_instance(tag: str, text: str = "", path: tuple[str, ...] = ("root",),
                  children: list[tuple[str, str]] | None = None,
                  child_labels: dict[str, str] | None = None
                  ) -> ElementInstance:
    """Build an ElementInstance with optional (tag, text) children."""
    element = Element(tag)
    if text:
        element.append_text(text)
    for child_tag, child_text in children or []:
        element.make_child(child_tag, child_text)
    return ElementInstance(element, tag, path, dict(child_labels or {}))


def space_of(*labels: str) -> LabelSpace:
    """A label space over the given labels (OTHER appended automatically)."""
    return LabelSpace(labels)


def training_set(pairs: list[tuple[ElementInstance, str]]
                 ) -> tuple[list[ElementInstance], list[str]]:
    """Split (instance, label) pairs into parallel lists."""
    instances = [instance for instance, _ in pairs]
    labels = [label for _, label in pairs]
    return instances, labels
