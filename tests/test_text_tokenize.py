"""Unit and property tests for tokenization."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import char_ngrams, ngrams, tokenize, tokenize_numeric


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("Great location") == ["great", "location"]

    def test_paper_price_split(self):
        # The paper splits "$70000" into "$" and "70000".
        assert tokenize("$70000") == ["$", "70000"]

    def test_thousands_separator_kept_together(self):
        assert tokenize("$70,000") == ["$", "70000"]
        assert tokenize("$1,234,567") == ["$", "1234567"]

    def test_comma_as_list_separator(self):
        assert tokenize("Miami, FL") == ["miami", "fl"]

    def test_phone_number(self):
        assert tokenize("(206) 523 4719") == ["206", "523", "4719"]

    def test_mixed_alnum(self):
        assert tokenize("CSE142") == ["cse", "142"]

    def test_punctuation_separates(self):
        assert tokenize("close-to_the.river") == [
            "close", "to", "the", "river"]

    def test_symbols_kept(self):
        assert tokenize("50% off @ $5 #2") == [
            "50", "%", "off", "@", "$", "5", "#", "2"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t\n ") == []

    @given(st.text(alphabet=string.printable, max_size=200))
    def test_tokens_are_lowercase_and_nonempty(self, text):
        for token in tokenize(text):
            assert token
            assert token == token.lower()

    @given(st.text(alphabet=string.ascii_letters + " ", max_size=100))
    def test_idempotent_on_word_text(self, text):
        once = tokenize(text)
        assert tokenize(" ".join(once)) == once


class TestTokenizeNumeric:
    def test_paper_example(self):
        assert tokenize_numeric("3 beds / 2.5 baths, $70,000") == [
            3.0, 2.5, 70000.0]

    def test_plain_integer(self):
        assert tokenize_numeric("42") == [42.0]

    def test_no_numbers(self):
        assert tokenize_numeric("no numbers here") == []

    def test_decimal(self):
        assert tokenize_numeric("pi is 3.14159") == [3.14159]

    def test_trailing_dot_not_decimal(self):
        assert tokenize_numeric("room 12.") == [12.0]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short(self):
        assert ngrams(["a"], 2) == []

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_char_ngrams(self):
        assert char_ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_char_ngrams_short_text(self):
        assert char_ngrams("a", 3) == ["a"]
        assert char_ngrams("", 3) == []

    @given(st.text(min_size=1, max_size=30), st.integers(1, 5))
    def test_char_ngram_count(self, text, n):
        grams = char_ngrams(text, n)
        assert len(grams) == max(len(text) - n + 1, 1)
