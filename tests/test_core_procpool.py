"""Tests for the process execution backend and its shared-array plumbing.

Three layers, bottom up: the hoisting pickler and shared-memory store
(:mod:`repro.core.shared_arrays`), the persistent :class:`WorkerPool`
(once-per-pool model reconstruction, batch broadcast, the wire
protocol's ok/failure/error replies), and :func:`run_process_map`'s
crash handling. Byte-identity of full matches across backends lives in
``test_golden_equivalence.py``; segment hygiene — nothing leaked after
normal shutdown, worker crashes, or abandonment — is pinned here.
"""

import gc
import pickle

import numpy as np
import pytest
from scipy import sparse

from repro.core.instance import ElementInstance
from repro.core.parallel import ParallelExecutor
from repro.core.procpool import (ProcessTask, RemoteTaskError, TaskFailure,
                                 WorkerPool, run_process_map)
from repro.core.shared_arrays import (SharedArrayStore, extract_arrays,
                                      layout, restore, segment_exists)
from repro.learners import NameMatcher
from repro.observability import StageProfile

from .helpers import make_instance, space_of, training_set

BIG = np.arange(512, dtype=np.float64)          # 4096 bytes: hoisted
SMALL = np.arange(4, dtype=np.float64)          # 32 bytes: stays inline


class TestExtractRestore:
    def test_roundtrip_is_identity(self):
        obj = {"big": BIG.copy(), "small": SMALL.copy(),
               "nested": [1, "two", (3.0,)]}
        payload, arrays = extract_arrays(obj)
        back = restore(payload, arrays)
        assert np.array_equal(back["big"], obj["big"])
        assert np.array_equal(back["small"], obj["small"])
        assert back["nested"] == obj["nested"]

    def test_only_large_plain_ndarrays_hoist(self):
        memmap_free = {"big": BIG.copy(), "small": SMALL.copy(),
                       "objects": np.array([{"a": 1}] * 200)}
        _, arrays = extract_arrays(memmap_free)
        assert len(arrays) == 1
        assert np.array_equal(arrays[0], BIG)

    def test_repeated_references_share_one_slot(self):
        array = BIG.copy()
        payload, arrays = extract_arrays([array, array])
        assert len(arrays) == 1
        first, second = restore(payload, arrays)
        assert first is second

    def test_csr_matrix_roundtrips_through_hoisted_triplets(self):
        rng = np.random.default_rng(7)
        dense = rng.random((64, 64)) * (rng.random((64, 64)) < 0.3)
        matrix = sparse.csr_matrix(dense)
        payload, arrays = extract_arrays(matrix)
        assert arrays, "CSR triplets should be large enough to hoist"
        back = restore(payload, arrays)
        assert (back != matrix).nnz == 0

    def test_restore_rejects_foreign_persistent_ids(self):
        class Alien(pickle.Pickler):
            def persistent_id(self, obj):
                return "alien" if obj is Ellipsis else None

        import io
        buffer = io.BytesIO()
        Alien(buffer).dump([Ellipsis])
        with pytest.raises(pickle.UnpicklingError):
            restore(buffer.getvalue(), [])


class TestSharedArrayStore:
    def test_layout_aligns_every_offset(self):
        arrays = [np.zeros(3, dtype=np.int8), np.zeros(5, dtype=np.int8),
                  np.zeros(100, dtype=np.float64)]
        specs, total = layout(arrays)
        assert all(spec.offset % 64 == 0 for spec in specs)
        assert total >= specs[-1].offset + specs[-1].nbytes

    def test_create_attach_views_release(self):
        store = SharedArrayStore.create([BIG, SMALL])
        name = store.name
        try:
            attached = SharedArrayStore.attach(store.handle)
            views = attached.views()
            assert np.array_equal(views[0], BIG)
            assert np.array_equal(views[1], SMALL)
            assert not views[0].flags.writeable
            with pytest.raises(ValueError):
                views[0][0] = -1.0
            del views
            attached.close()
        finally:
            store.release()
        assert not segment_exists(name)

    def test_attacher_close_never_frees_the_name(self):
        store = SharedArrayStore.create([BIG])
        name = store.name
        try:
            attached = SharedArrayStore.attach(store.handle)
            attached.close()
            assert segment_exists(name)
        finally:
            store.release()
        assert not segment_exists(name)

    def test_restore_around_memmap_views(self, tmp_path):
        """Memmap-backed views splice in fine, and a later extract of
        the restored object leaves them inline (only exactly-ndarray
        objects hoist) — the property the persistence mmap fast path
        rests on."""
        payload, arrays = extract_arrays({"big": BIG.copy()})
        file = tmp_path / "0000.npy"
        np.save(file, arrays[0])
        views = [np.load(file, mmap_mode="r")]
        back = restore(payload, views)
        assert isinstance(back["big"], np.memmap)
        assert np.array_equal(back["big"], BIG)
        assert extract_arrays(back)[1] == []


def _fitted_name_matcher() -> NameMatcher:
    pairs = [(make_instance("price", "$ 100"), "PRICE"),
             (make_instance("cost", "$ 200"), "PRICE"),
             (make_instance("location", "Miami, FL"), "ADDRESS"),
             (make_instance("address", "Kent, WA"), "ADDRESS"),
             (make_instance("phone", "(206) 555 0100"), "PHONE")]
    learner = NameMatcher()
    instances, labels = training_set(pairs)
    learner.fit(instances, labels, space_of("PRICE", "ADDRESS", "PHONE"))
    return learner


def _query_instances() -> list[ElementInstance]:
    return [make_instance("price", "$ 42"),
            make_instance("location", "Boston, MA"),
            make_instance("phone", "(617) 555 0123"),
            make_instance("listing", "misc")]


class _SuicideLearner:
    """Hard-exits the worker mid-predict — the genuine crash path."""

    name = "suicide"

    def predict_scores(self, instances):
        import os
        os._exit(1)


class TestWorkerPool:
    @pytest.fixture()
    def pool(self):
        pool = WorkerPool([_fitted_name_matcher()], workers=2)
        yield pool
        pool.shutdown()

    def test_workers_answer_predict_tasks(self, pool):
        learner = _fitted_name_matcher()
        batch = _query_instances()
        expected = learner.predict_scores(batch)
        token = pool.ship_batch(batch)
        worker_id = pool.worker_ids()[0]
        pool.submit(worker_id, 0,
                    {"kind": "predict", "learner": "name_matcher",
                     "batch": token, "start": 0, "stop": len(batch)})
        events = pool.wait()
        assert events and events[0][0] == "result"
        reply = events[0][2]
        assert reply[0] == "ok" and reply[1] == 0
        assert np.array_equal(reply[2], expected)
        assert isinstance(reply[3], StageProfile)

    def test_armed_failure_travels_as_value(self, pool):
        token = pool.ship_batch(_query_instances())
        worker_id = pool.worker_ids()[0]
        pool.submit(worker_id, 1,
                    {"kind": "predict", "learner": "missing_learner",
                     "batch": token, "start": 0, "stop": 1,
                     "catch": True})
        reply = pool.wait()[0][2]
        # The lookup happens before the catch boundary, so this is an
        # uncaught worker-side error with the original KeyError shipped
        # home (picklable), never a crash.
        assert reply[0] == "error" and reply[1] == 1
        assert isinstance(reply[2], KeyError)
        assert reply[3] == "KeyError"

    def test_normal_shutdown_frees_the_segment(self):
        pool = WorkerPool([_fitted_name_matcher()], workers=2)
        name = pool.segment_name
        assert segment_exists(name)
        pool.shutdown()
        assert not segment_exists(name)
        assert not pool.alive

    def test_shutdown_is_idempotent(self, pool):
        pool.shutdown()
        pool.shutdown()
        assert not segment_exists(pool.segment_name)

    def test_crash_then_retire_frees_the_segment(self):
        pool = WorkerPool([_fitted_name_matcher()], workers=2)
        name = pool.segment_name
        pool.crash_worker(0)
        assert pool.broken and not pool.alive
        assert pool.worker_ids() == [1]
        pool.retire()
        assert not segment_exists(name)

    def test_abandoned_pool_is_finalized(self):
        pool = WorkerPool([_fitted_name_matcher()], workers=1)
        name = pool.segment_name
        del pool
        gc.collect()
        assert not segment_exists(name)


class TestRunProcessMap:
    @staticmethod
    def _tasks(batch, learner_name="name_matcher", fallbacks=None):
        tasks = []
        for index in range(len(batch)):
            value = None if fallbacks is None else fallbacks[index]
            tasks.append(ProcessTask(
                payload={"kind": "predict", "learner": learner_name,
                         "start": index, "stop": index + 1},
                batch=batch,
                fallback=(lambda profile, v=value, i=index:
                          f"fallback-{i}" if v is None else v)))
        return tasks

    def test_dead_pool_falls_back_to_serial(self):
        pool = WorkerPool([_fitted_name_matcher()], workers=1)
        try:
            pool.crash_worker(0)
            executor = ParallelExecutor(workers=2, backend="process",
                                        pool=pool)
            batch = _query_instances()
            results = run_process_map(executor, self._tasks(batch),
                                      StageProfile(), "predict")
            assert results == [f"fallback-{i}" for i in range(len(batch))]
        finally:
            pool.shutdown()

    def test_mid_map_worker_death_retires_pool_and_finishes_serially(self):
        """A worker dying with tasks in flight: the map raises
        ``PoolBrokenError`` internally, retires the pool (segment
        released immediately — hygiene never waits for the system), and
        finishes every unfinished task through its local fallback."""
        pool = WorkerPool([_fitted_name_matcher(), _SuicideLearner()],
                          workers=1)
        name = pool.segment_name
        try:
            executor = ParallelExecutor(workers=2, backend="process",
                                        pool=pool)
            batch = _query_instances()
            results = run_process_map(
                executor, self._tasks(batch, learner_name="suicide"),
                StageProfile(), "predict")
            assert results == [f"fallback-{i}" for i in range(len(batch))]
            assert pool.broken
            assert not segment_exists(name)
        finally:
            pool.shutdown()


class TestTaskFailure:
    def test_from_exception_keeps_both_strings(self):
        failure = TaskFailure.from_exception(ValueError("bad rows"))
        assert failure.error_type == "ValueError"
        assert failure.message == "bad rows"
        assert failure.cause == "bad rows"

    def test_cause_falls_back_to_type_on_empty_message(self):
        assert TaskFailure("TimeoutError", "").cause == "TimeoutError"

    def test_remote_task_error_message(self):
        error = RemoteTaskError("WeirdError", "unpicklable state")
        assert "WeirdError" in str(error)
        assert "unpicklable state" in str(error)
        assert RemoteTaskError("Bare", "").args[0] == "Bare"
