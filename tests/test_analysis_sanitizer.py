"""Tests for the dynamic sanitizers (small configurations so the suite
stays fast; CI runs the full 50-iteration acceptance configuration)."""

from repro.analysis.sanitizer import (SanitizerReport, diff_determinism,
                                      shake_caches)
from repro.core import featurize


class TestSanitizerReport:
    def test_ok_and_render(self):
        report = SanitizerReport("cache-race", iterations=5)
        assert report.ok
        assert "ok (5 iterations)" in report.render()

    def test_failures_flip_ok_and_render(self):
        report = SanitizerReport("determinism", iterations=2,
                                 failures=["mapping differs on ['a']"])
        assert not report.ok
        rendered = report.render()
        assert "FAILED" in rendered and "mapping differs" in rendered

    def test_render_truncates_long_failure_lists(self):
        report = SanitizerReport("x", failures=[f"f{i}"
                                                for i in range(25)])
        assert "... and 5 more" in report.render()


class TestCacheShaker:
    def test_shaker_passes_on_the_real_cache(self):
        report = shake_caches(iterations=3, threads=4, cache_capacity=4)
        assert report.ok, report.render()
        assert report.iterations == 3
        assert report.details["cache_capacity"] == 4

    def test_shaker_restores_cache_capacity(self):
        before = featurize._TEXT_CACHE_MAX
        shake_caches(iterations=1, threads=2, cache_capacity=2)
        assert featurize._TEXT_CACHE_MAX == before
        assert len(featurize._text_cache) == 0

    def test_shaker_detects_divergence(self, monkeypatch):
        """A corrupted lookup must be reported, proving the harness
        actually compares against the reference pipeline."""
        real = featurize.pipeline_tokens

        def corrupted(text):
            tokens = list(real(text))
            if "Miami" in text:
                tokens.append("corrupted")
            return tokens

        monkeypatch.setattr(featurize, "pipeline_tokens", corrupted)
        report = shake_caches(iterations=1, threads=2,
                              cache_capacity=4)
        assert not report.ok
        assert any("corrupted" in failure
                   for failure in report.failures)


class TestDeterminismDiffer:
    def test_workers_1_vs_4_identical(self):
        report = diff_determinism(workers=4, repeats=1, n_listings=10)
        assert report.ok, report.render()
        assert report.details["tags"] > 0
        assert report.details["spans"] > 0
