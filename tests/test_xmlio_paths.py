"""Tests for the path-query language over XML trees."""

import pytest

from repro.xmlio import (PathSyntaxError, parse_element, select,
                         select_one, select_text)

DOC = parse_element("""
<listing id="1">
  <contact kind="agent">
    <name>Ann</name>
    <phone type="work">111</phone>
    <phone type="cell">222</phone>
  </contact>
  <contact kind="office">
    <name>MAX Realty</name>
    <phone type="work">333</phone>
  </contact>
  <price>250000</price>
  <details><area><sqft>1800</sqft></area></details>
</listing>
""")


class TestChildSteps:
    def test_single_step(self):
        assert [e.tag for e in select(DOC, "price")] == ["price"]

    def test_two_steps(self):
        assert select_text(DOC, "contact/name") == ["Ann", "MAX Realty"]

    def test_three_steps(self):
        assert select_text(DOC, "details/area/sqft") == ["1800"]

    def test_no_match(self):
        assert select(DOC, "nothing/here") == []

    def test_wildcard(self):
        names = [e.tag for e in select(DOC, "contact/*")]
        assert names == ["name", "phone", "phone", "name", "phone"]


class TestDescendantSteps:
    def test_leading_double_slash(self):
        assert select_text(DOC, "//phone") == ["111", "222", "333"]

    def test_mid_path_double_slash(self):
        assert select_text(DOC, "details//sqft") == ["1800"]

    def test_descendant_then_child(self):
        assert select_text(DOC, "//area/sqft") == ["1800"]

    def test_document_order_no_duplicates(self):
        tags = [e.tag for e in select(DOC, "//*")]
        assert tags.count("phone") == 3
        assert tags[0] == "contact"


class TestPredicates:
    def test_positional(self):
        assert select_text(DOC, "contact[2]/name") == ["MAX Realty"]

    def test_positional_out_of_range(self):
        assert select(DOC, "contact[9]") == []

    def test_attribute_presence(self):
        assert len(select(DOC, "contact[@kind]")) == 2

    def test_attribute_equality(self):
        assert select_text(DOC, "//phone[@type='cell']") == ["222"]

    def test_attribute_equality_double_quotes(self):
        assert select_text(DOC, '//phone[@type="work"]') == ["111",
                                                             "333"]

    def test_select_one(self):
        assert select_one(DOC, "//phone").immediate_text() == "111"
        assert select_one(DOC, "zzz") is None


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "/absolute",
        "a/",
        "a//",
        "a[b=c]",
        "a[0]",
        "a[?]",
        "1tag",
    ])
    def test_bad_paths_raise(self, bad):
        with pytest.raises(PathSyntaxError):
            select(DOC, bad)
