"""End-to-end resilience tests: quarantine, retries, pool fallback,
anytime search, fault-aware ingestion, and the chaos acceptance run."""

import json

import numpy as np
import pytest

from repro.resilience import (FaultPlan, ResiliencePolicy,
                              ingest_fragments)

pytestmark = pytest.mark.filterwarnings("ignore")

N_LISTINGS = 15


@pytest.fixture(scope="module")
def trained():
    """One trained system + domain, shared across the module. Tests
    must leave ``system.policy`` and ``system.workers`` reset."""
    from repro.core import LSDSystem
    from repro.datasets import load_domain

    domain = load_domain("real_estate_1")
    system = LSDSystem.with_default_learners(
        domain.mediated_schema, constraints=domain.constraints,
        extra_learners=domain.recognizers(), workers=1)
    for source in domain.sources[:2]:
        system.add_training_source(source.schema,
                                   source.listings(N_LISTINGS),
                                   source.mapping)
    system.train()
    return system, domain


def match_under(trained, policy, workers=1):
    system, domain = trained
    source = domain.sources[2]
    system.workers = workers
    system.policy = policy
    try:
        return system.match(source.schema, source.listings(N_LISTINGS))
    finally:
        system.policy = None
        system.workers = 1


def plan_of(*faults, seed=0):
    return FaultPlan.from_dict({"seed": seed, "faults": list(faults)})


class TestInertPolicy:
    def test_matches_policy_free_run_exactly(self, trained):
        baseline = match_under(trained, None)
        policied = match_under(trained, ResiliencePolicy())
        assert dict(policied.mapping.items()) == \
            dict(baseline.mapping.items())
        for tag, row in baseline.tag_scores.items():
            assert np.array_equal(policied.tag_scores[tag], row)
        assert baseline.degradation is None
        assert policied.degradation is not None
        assert not policied.degradation.degraded


class TestPredictQuarantine:
    def test_crashing_learner_is_quarantined_not_fatal(self, trained):
        policy = ResiliencePolicy(fault_plan=plan_of(
            {"site": "learner.predict", "key": "name_matcher",
             "action": "raise", "count": 99}))
        result = match_under(trained, policy)
        degradation = result.degradation
        assert degradation.quarantined_learners == ["name_matcher"]
        event = degradation.quarantines[0]
        assert event.stage == "predict"
        assert event.error_type == "FaultInjected"
        # The run still proposes a label for every source tag.
        _, domain = trained
        assert set(dict(result.mapping.items())) == \
            set(domain.sources[2].schema.tags)

    def test_without_policy_the_same_fault_would_raise(self, trained):
        """The legacy path has no quarantine: this pins that the
        resilience behaviour is policy-gated, not always-on."""
        baseline = match_under(trained, None)
        assert baseline.degradation is None


class TestExecutorResilience:
    def test_task_fault_recovered_by_retry_budget(self, trained):
        policy = ResiliencePolicy(retries=1, backoff=0.0,
                                  fault_plan=plan_of(
                                      {"site": "executor.task",
                                       "key": "0", "count": 1}))
        result = match_under(trained, policy)
        retries = result.degradation.as_dict()["retries"]
        assert retries == [{"stage": "predict", "task": 0,
                            "attempts": 2, "recovered": True}]
        baseline = match_under(trained, None)
        assert dict(result.mapping.items()) == \
            dict(baseline.mapping.items())

    def test_task_fault_without_retries_raises(self, trained):
        from repro.resilience import FaultInjected
        policy = ResiliencePolicy(fault_plan=plan_of(
            {"site": "executor.task", "key": "0", "count": 1}))
        with pytest.raises(FaultInjected):
            match_under(trained, policy)

    def test_pool_death_falls_back_to_serial(self, trained):
        policy = ResiliencePolicy(fault_plan=plan_of(
            {"site": "executor.pool", "key": "predict"}))
        result = match_under(trained, policy, workers=4)
        assert result.degradation.as_dict()["pool_failures"] == \
            ["predict"]
        baseline = match_under(trained, None)
        assert dict(result.mapping.items()) == \
            dict(baseline.mapping.items())


class TestAnytimeSearch:
    def test_search_fault_forces_best_so_far(self, trained):
        policy = ResiliencePolicy(fault_plan=plan_of(
            {"site": "constraints.search", "key": "search"}))
        result = match_under(trained, policy)
        assert result.anytime
        assert result.degradation.anytime
        _, domain = trained
        assert set(dict(result.mapping.items())) == \
            set(domain.sources[2].schema.tags)


class TestFitQuarantine:
    def test_learner_dropped_from_ensemble_during_training(self):
        from repro.core import LSDSystem
        from repro.datasets import load_domain

        domain = load_domain("real_estate_1")
        policy = ResiliencePolicy(fault_plan=plan_of(
            {"site": "learner.fit", "key": "naive_bayes"}))
        system = LSDSystem.with_default_learners(
            domain.mediated_schema, constraints=domain.constraints,
            extra_learners=domain.recognizers(), policy=policy)
        for source in domain.sources[:2]:
            system.add_training_source(source.schema,
                                       source.listings(10),
                                       source.mapping)
        system.train()
        assert [event.stage for event in policy.report.quarantines] == \
            ["fit"]
        names = [learner.name for learner in system.active_learners]
        assert "naive_bayes" not in names
        assert "name_matcher" in names
        # Matching runs on the survivors only.
        source = domain.sources[2]
        system.policy = None
        result = system.match(source.schema, source.listings(10))
        assert set(dict(result.mapping.items())) == \
            set(source.schema.tags)


class TestFaultAwareIngestion:
    CORRUPT_EVERY = {"site": "ingest.chunk", "action": "corrupt",
                     "at_hit": 1, "every": 10, "count": 2}

    def listings_text(self, count=20):
        return "\n".join(
            f"<listing><price>{100 + i}</price>"
            f"<city>City{i}</city></listing>" for i in range(count))

    def test_lenient_mode_absorbs_injected_corruption(self):
        plan = plan_of(self.CORRUPT_EVERY, seed=5)
        roots, log = ingest_fragments(self.listings_text(), "lenient",
                                      plan)
        assert not log.ok
        injected = [e for e in log.events if e.kind == "injected-fault"]
        assert len(injected) == 2
        assert len(roots) + len(log.dropped) == 20
        assert len(log.clean) == 18

    def test_strict_mode_raises_on_injected_corruption(self):
        from repro.xmlio.errors import XMLSyntaxError
        plan = plan_of(self.CORRUPT_EVERY, seed=5)
        with pytest.raises(XMLSyntaxError):
            ingest_fragments(self.listings_text(), "strict", plan)

    def test_no_ingest_faults_delegates_to_recovery(self):
        plan = plan_of({"site": "learner.predict", "key": "nb"})
        roots, log = ingest_fragments(self.listings_text(5), "lenient",
                                      plan)
        assert log.ok
        assert len(roots) == 5


class TestChaosAcceptance:
    """The issue's acceptance run: corrupt listings + a learner crash
    + pool death, at workers 1 and 4 — identical degraded output."""

    def test_diff_chaos_determinism_passes(self):
        from repro.analysis.sanitizer import diff_chaos_determinism
        report = diff_chaos_determinism(workers=4, repeats=1,
                                        n_listings=10)
        assert report.ok, report.render()
        assert report.details["quarantined"] == ["name_matcher"]
        assert report.details["fired_faults"] >= 3


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    from repro.cli import main

    out = tmp_path_factory.mktemp("chaos-data")
    assert main(["generate", "--domain", "real_estate_1",
                 "--out", str(out), "--listings", "20"]) == 0
    return out


@pytest.fixture(scope="module")
def model(generated, tmp_path_factory):
    from repro.cli import main

    model_path = tmp_path_factory.mktemp("chaos-model") / "model.lsd"
    assert main([
        "train",
        "--mediated", str(generated / "mediated.dtd"),
        "--constraints", str(generated / "constraints.txt"),
        "--train",
        str(generated / "homeseekers.com"),
        str(generated / "yahoo-homes.com"),
        "--model", str(model_path),
        "--max-instances", "20",
    ]) == 0
    return model_path


CHAOS_PLAN = {
    "seed": 42,
    "faults": [
        {"site": "ingest.chunk", "action": "corrupt", "at_hit": 1,
         "every": 10, "count": 2},
        {"site": "learner.predict", "key": "name_matcher",
         "action": "raise", "message": "chaos: learner crash"},
        {"site": "executor.pool", "key": "predict", "action": "raise"},
    ],
}


class TestCliChaos:
    def run_match(self, generated, model, tmp_path, workers,
                  *extra):
        from repro.cli import main

        out = tmp_path / f"mapping-w{workers}.txt"
        report = tmp_path / f"report-w{workers}.json"
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--out", str(out), "--report-out", str(report),
            "--workers", str(workers), *extra,
        ])
        return code, out, report

    def test_chaos_run_degrades_identically_at_any_workers(
            self, generated, model, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(CHAOS_PLAN))
        outputs = {}
        for workers in (1, 4):
            code, out, report = self.run_match(
                generated, model, tmp_path, workers,
                "--input-mode", "lenient",
                "--fault-plan", str(plan_path))
            assert code == 0
            captured = capsys.readouterr()
            assert "DEGRADED RUN" in captured.err
            outputs[workers] = (out.read_text(),
                                json.loads(report.read_text()))

        assert outputs[1][0] == outputs[4][0]  # mapping files: bytes
        serial, parallel = outputs[1][1], outputs[4][1]
        assert serial["degradation"] == parallel["degradation"]
        assert serial["mapping"] == parallel["mapping"]
        assert serial["quality"] == parallel["quality"]

        degradation = serial["degradation"]
        assert [q["learner"] for q in degradation["quarantined"]] == \
            ["name_matcher"]
        assert degradation["ingestion"]["listings"]["recovered"] or \
            degradation["ingestion"]["listings"]["dropped"]
        assert degradation["pool_failures"] == ["predict"]

    def test_chaos_report_validates_against_schema(
            self, generated, model, tmp_path, capsys):
        from repro.observability import validate_file

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(CHAOS_PLAN))
        code, _, report = self.run_match(
            generated, model, tmp_path, 2,
            "--input-mode", "lenient", "--fault-plan", str(plan_path))
        assert code == 0
        capsys.readouterr()
        validated = validate_file(str(report))
        assert "degradation" in validated

    def test_clean_run_report_has_no_degradation_section(
            self, generated, model, tmp_path, capsys):
        code, _, report = self.run_match(generated, model, tmp_path, 1)
        assert code == 0
        capsys.readouterr()
        data = json.loads(report.read_text())
        assert "degradation" not in data
        assert "input_mode" not in data["config"]


class TestCliErrors:
    def test_corrupt_model_file_is_a_one_line_error(self, generated,
                                                    tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.lsd"
        bad.write_bytes(b"not a model")
        code = main([
            "match", "--model", str(bad),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad.lsd" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_model_file(self, generated, capsys):
        from repro.cli import main

        code = main([
            "match", "--model", "/nonexistent/model.lsd",
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
        ])
        assert code == 2

    def test_unreadable_listings_hint_mentions_lenient_mode(
            self, generated, model, tmp_path, capsys):
        from repro.cli import main

        broken = tmp_path / "broken.xml"
        broken.write_text("<listing><price>1</listing>")
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings", str(broken),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "--input-mode lenient" in err

    def test_bad_fault_plan_is_a_cli_error(self, generated, model,
                                           tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text('{"faults": [{"site": "no.such.site"}]}')
        code = main([
            "match", "--model", str(model),
            "--schema", str(generated / "greathomes.com" / "schema.dtd"),
            "--listings",
            str(generated / "greathomes.com" / "listings.xml"),
            "--fault-plan", str(plan_path),
        ])
        assert code == 2
        assert "unknown fault site" in capsys.readouterr().err
