"""Property-based tests over the dataset generators.

Any sample seed must produce DTD-valid, well-formed, deterministic
listings for every source of every domain — the generators are the
foundation the entire evaluation rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DOMAIN_NAMES, load_domain
from repro.xmlio import is_valid, parse_element, write_element

# Domains are expensive to build; share one instance per domain.
_DOMAINS = {name: load_domain(name, seed=0) for name in DOMAIN_NAMES}


class TestGeneratorProperties:
    @given(domain_name=st.sampled_from(DOMAIN_NAMES),
           source_index=st.integers(0, 4),
           sample_seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_any_sample_validates(self, domain_name, source_index,
                                  sample_seed):
        domain = _DOMAINS[domain_name]
        source = domain.sources[source_index]
        for listing in source.listings(3, sample_seed=sample_seed):
            assert is_valid(listing, source.schema.dtd)

    @given(domain_name=st.sampled_from(DOMAIN_NAMES),
           source_index=st.integers(0, 4),
           sample_seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_listings_roundtrip_through_serializer(self, domain_name,
                                                   source_index,
                                                   sample_seed):
        domain = _DOMAINS[domain_name]
        source = domain.sources[source_index]
        for listing in source.listings(2, sample_seed=sample_seed):
            text = write_element(listing)
            reparsed = parse_element(text, keep_whitespace=True)
            assert reparsed.tag == listing.tag
            assert reparsed.text_content() == listing.text_content()

    @given(domain_name=st.sampled_from(DOMAIN_NAMES),
           sample_seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_determinism_per_seed(self, domain_name, sample_seed):
        domain = _DOMAINS[domain_name]
        source = domain.sources[0]
        first = [write_element(l)
                 for l in source.listings(3, sample_seed=sample_seed)]
        second = [write_element(l)
                  for l in source.listings(3, sample_seed=sample_seed)]
        assert first == second

    @given(domain_name=st.sampled_from(DOMAIN_NAMES))
    @settings(max_examples=8, deadline=None)
    def test_prefix_stability(self, domain_name):
        """Requesting fewer listings yields a prefix of the longer run —
        the sensitivity sweep (Fig 8b/c) relies on nested samples."""
        domain = _DOMAINS[domain_name]
        source = domain.sources[1]
        short = [write_element(l) for l in source.listings(4)]
        long = [write_element(l) for l in source.listings(8)]
        assert long[:4] == short

    @pytest.mark.parametrize("domain_name", DOMAIN_NAMES)
    def test_text_values_are_clean(self, domain_name):
        """Values contain no XML-hostile control characters."""
        domain = _DOMAINS[domain_name]
        for source in domain.sources:
            for listing in source.listings(5):
                for node in listing.iter():
                    text = node.immediate_text()
                    assert "\x00" not in text
                    assert "<" not in text and ">" not in text
