"""Tests for instance-column extraction."""

from repro.core import SourceSchema, extract_columns, fill_child_labels
from repro.xmlio import parse_fragments

SCHEMA = SourceSchema("""
<!ELEMENT listing (location?, price, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT contact (name, phone)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
""")

LISTINGS = parse_fragments("""
<listing><location>Miami, FL</location><price>$1</price>
  <contact><name>Ann</name><phone>555-0001</phone></contact></listing>
<listing><price>$2</price>
  <contact><name>Bob</name><phone>555-0002</phone></contact></listing>
""")


class TestExtraction:
    def test_every_tag_gets_a_column(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        assert set(columns) == set(SCHEMA.tags)

    def test_column_sizes(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        assert len(columns["price"]) == 2
        assert len(columns["location"]) == 1  # optional, absent once
        assert len(columns["name"]) == 2

    def test_texts(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        assert columns["price"].texts() == ["$1", "$2"]

    def test_paths_recorded(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        [instance] = columns["location"].instances
        assert instance.path == ("listing",)
        assert columns["phone"].instances[0].path == ("listing", "contact")

    def test_listing_indices(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        assert [i.listing_index for i in columns["price"].instances] == \
            [0, 1]

    def test_cap_limits_instances(self):
        columns = extract_columns(SCHEMA, LISTINGS,
                                  max_instances_per_tag=1)
        assert len(columns["price"]) == 1

    def test_nested_instance_text(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        text = columns["contact"].instances[0].text
        assert "Ann" in text and "555-0001" in text

    def test_duplicates_detected(self):
        listings = parse_fragments(
            "<listing><price>$1</price><contact><name>A</name>"
            "<phone>1</phone></contact></listing>"
            "<listing><price>$1</price><contact><name>B</name>"
            "<phone>2</phone></contact></listing>")
        columns = extract_columns(SCHEMA, listings)
        assert columns["price"].has_duplicates()
        assert not columns["name"].has_duplicates()

    def test_attributes_become_columns(self):
        schema = SourceSchema(
            '<!ELEMENT l (x)><!ELEMENT x (#PCDATA)>'
            '<!ATTLIST x unit CDATA #IMPLIED>'
            '<!ELEMENT unit (#PCDATA)>')
        listings = parse_fragments('<l><x unit="usd">5</x></l>')
        columns = extract_columns(schema, listings)
        assert columns["unit"].texts() == ["usd"]


class TestChildLabels:
    def test_fill_child_labels_direct(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        fill_child_labels(columns, {"name": "AGENT-NAME",
                                    "phone": "AGENT-PHONE"})
        instance = columns["contact"].instances[0]
        assert instance.child_labels == {"name": "AGENT-NAME",
                                         "phone": "AGENT-PHONE"}

    def test_fill_child_labels_descendants(self):
        schema = SourceSchema(
            "<!ELEMENT l (a)><!ELEMENT a (b)><!ELEMENT b (c)>"
            "<!ELEMENT c (#PCDATA)>")
        listings = parse_fragments("<l><a><b><c>x</c></b></a></l>")
        columns = extract_columns(schema, listings)
        fill_child_labels(columns, {"b": "B", "c": "C"})
        [a] = columns["a"].instances
        assert a.child_labels == {"b": "B", "c": "C"}

    def test_leaf_instances_get_empty_labels(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        fill_child_labels(columns, {"name": "AGENT-NAME"})
        assert columns["price"].instances[0].child_labels == {}

    def test_unknown_tags_skipped(self):
        columns = extract_columns(SCHEMA, LISTINGS)
        fill_child_labels(columns, {})
        assert columns["contact"].instances[0].child_labels == {}
