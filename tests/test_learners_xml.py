"""Tests for the structural XML learner (§5 / Table 2 of the paper)."""

import numpy as np

from repro.learners import NaiveBayesLearner, XMLLearner, structure_tokens
from repro.xmlio import parse_element

from repro.core.instance import ElementInstance

from .helpers import space_of, training_set


def nested_instance(xml: str, child_labels: dict[str, str],
                    tag: str | None = None) -> ElementInstance:
    element = parse_element(xml)
    return ElementInstance(element, tag or element.tag, ("root",),
                           dict(child_labels))


SPACE = space_of("CONTACT-INFO", "DESCRIPTION", "AGENT-NAME",
                 "OFFICE-NAME")

# The paper's Figure 7 example: a contact element and a description that
# share all their words. Flat bags cannot tell them apart.
CONTACT_XML = ("<contact><name>Gail Murphy</name>"
               "<firm>MAX Realtors</firm></contact>")
DESC_XML = ("<description>Victorian house with a view. Name your price! "
            "To see it, contact Gail Murphy at MAX Realtors."
            "</description>")
CHILD_LABELS = {"name": "AGENT-NAME", "firm": "OFFICE-NAME"}


def figure7_training():
    pairs = []
    for agent, firm in [("Gail Murphy", "MAX Realtors"),
                        ("Mike Smith", "ACME Homes"),
                        ("Jane Kendall", "MAX Realtors")]:
        pairs.append((nested_instance(
            f"<contact><name>{agent}</name><firm>{firm}</firm></contact>",
            CHILD_LABELS), "CONTACT-INFO"))
        pairs.append((nested_instance(
            f"<description>Lovely house, contact {agent} at {firm}."
            "</description>", {}), "DESCRIPTION"))
    return pairs


class TestStructureTokens:
    def test_text_tokens_present(self):
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        tokens = structure_tokens(instance)
        assert "gail" in tokens and "realtor" in tokens

    def test_node_tokens_present(self):
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        tokens = structure_tokens(instance)
        assert "node:AGENT-NAME" in tokens
        assert "node:OFFICE-NAME" in tokens

    def test_root_edge_tokens(self):
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        tokens = structure_tokens(instance)
        assert "d->AGENT-NAME" in tokens
        assert "d->OFFICE-NAME" in tokens

    def test_word_edge_tokens(self):
        # Figure 7(f): AGENT-NAME->gail, OFFICE-NAME->realtor.
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        tokens = structure_tokens(instance)
        assert "AGENT-NAME->gail" in tokens
        assert "OFFICE-NAME->realtor" in tokens

    def test_flat_instance_has_word_edges_only(self):
        instance = nested_instance(DESC_XML, {})
        tokens = structure_tokens(instance)
        assert not any(t.startswith("node:") for t in tokens)
        assert "d->gail" in tokens

    def test_unlabelled_child_gets_placeholder(self):
        instance = nested_instance(CONTACT_XML, {})
        tokens = structure_tokens(instance)
        assert "node:?" in tokens

    def test_structure_disabled(self):
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        tokens = structure_tokens(instance, include_structure=False)
        assert all("->" not in t and not t.startswith("node:")
                   for t in tokens)

    def test_deep_nesting_edges(self):
        instance = nested_instance(
            "<a><b><c>word</c></b></a>",
            {"b": "CONTACT-INFO", "c": "AGENT-NAME"})
        tokens = structure_tokens(instance)
        assert "d->CONTACT-INFO" in tokens
        assert "CONTACT-INFO->AGENT-NAME" in tokens
        assert "AGENT-NAME->word" in tokens


class TestXMLLearnerVsNaiveBayes:
    def test_figure7_disambiguation(self):
        """The paper's motivating case: same words, different structure."""
        instances, labels = training_set(figure7_training())

        xml_learner = XMLLearner()
        xml_learner.fit(instances, labels, SPACE)

        contact_query = nested_instance(
            "<contact><name>Pat Doe</name><firm>MAX Realtors</firm>"
            "</contact>", CHILD_LABELS)
        desc_query = nested_instance(
            "<description>A house. Contact Pat Doe at MAX Realtors."
            "</description>", {})

        [p_contact, p_desc] = xml_learner.predict(
            [contact_query, desc_query])
        assert p_contact.top() == "CONTACT-INFO"
        assert p_desc.top() == "DESCRIPTION"

    def test_structure_tokens_raise_confidence_on_nested(self):
        instances, labels = training_set(figure7_training())
        xml_learner = XMLLearner()
        xml_learner.fit(instances, labels, SPACE)
        flat = NaiveBayesLearner()
        flat.fit(instances, labels, SPACE)

        contact_query = nested_instance(CONTACT_XML, CHILD_LABELS)
        col = SPACE.index_of("CONTACT-INFO")
        xml_score = xml_learner.predict_scores([contact_query])[0, col]
        flat_score = flat.predict_scores([contact_query])[0, col]
        assert xml_score > flat_score

    def test_rows_are_distributions(self):
        instances, labels = training_set(figure7_training())
        learner = XMLLearner()
        learner.fit(instances, labels, SPACE)
        scores = learner.predict_scores(instances)
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_clone_preserves_structure_flag(self):
        learner = XMLLearner(include_structure=False)
        clone = learner.clone()
        assert clone.include_structure is False
        assert clone.space is None

    def test_ablation_structure_off_equals_nb_tokens(self):
        instance = nested_instance(CONTACT_XML, CHILD_LABELS)
        off = structure_tokens(instance, include_structure=False)
        assert off == ["gail", "murphi", "max", "realtor"]
