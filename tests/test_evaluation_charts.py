"""Tests for the ASCII chart renderers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import bar_chart, grouped_bar_chart, line_series


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart([("a", 0.5), ("b", 1.0)], width=4)
        lines = out.splitlines()
        assert lines[0].startswith("a  ##")
        assert lines[1].startswith("b  ####")
        assert "50.0%" in lines[0] and "100.0%" in lines[1]

    def test_title(self):
        out = bar_chart([("x", 1.0)], title="My chart")
        assert out.splitlines()[0] == "My chart"

    def test_empty(self):
        assert bar_chart([]) == ""
        assert bar_chart([], title="t") == "t"

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)], width=10)
        assert "#" not in out

    def test_scaling_to_peak(self):
        out = bar_chart([("low", 0.4), ("high", 0.8)], width=10)
        low_bar = out.splitlines()[0].count("#")
        high_bar = out.splitlines()[1].count("#")
        assert high_bar == 10
        assert low_bar == 5

    def test_custom_value_format(self):
        out = bar_chart([("n", 0.123)], value_format="{:.3f}")
        assert "0.123" in out

    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=8,
                          alphabet="abcdefgh"),
                  st.floats(0, 1)),
        min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_one_line_per_item(self, items):
        out = bar_chart(items, width=20)
        assert len(out.splitlines()) == len(items)


class TestGroupedAndSeries:
    def test_grouped(self):
        out = grouped_bar_chart({
            "domain-1": [("base", 0.5), ("full", 0.9)],
            "domain-2": [("base", 0.6), ("full", 0.8)],
        }, title="Figure")
        assert "domain-1" in out and "domain-2" in out
        assert out.splitlines()[0] == "Figure"

    def test_line_series_sorted_by_x(self):
        out = line_series({100: 0.9, 5: 0.5, 20: 0.8})
        lines = out.splitlines()
        assert lines[0].startswith("5 ")
        assert lines[-1].startswith("100")
