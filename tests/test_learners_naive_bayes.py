"""Tests for the multinomial Naive Bayes learner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners import NaiveBayesLearner

from .helpers import make_instance, space_of, training_set

SPACE = space_of("DESCRIPTION", "ADDRESS", "PRICE")

TRAINING = [
    (make_instance("d", "fantastic house great location"), "DESCRIPTION"),
    (make_instance("d", "great yard beautiful view"), "DESCRIPTION"),
    (make_instance("d", "fantastic beach close to river"), "DESCRIPTION"),
    (make_instance("a", "Miami, FL"), "ADDRESS"),
    (make_instance("a", "Boston, MA"), "ADDRESS"),
    (make_instance("a", "Seattle, WA"), "ADDRESS"),
    (make_instance("p", "$ 250,000"), "PRICE"),
    (make_instance("p", "$ 110,000"), "PRICE"),
    (make_instance("p", "$ 70,000"), "PRICE"),
]


def fitted(**kwargs):
    learner = NaiveBayesLearner(**kwargs)
    instances, labels = training_set(TRAINING)
    learner.fit(instances, labels, SPACE)
    return learner


class TestClassification:
    def test_word_frequency_signal(self):
        learner = fitted()
        [p] = learner.predict(
            [make_instance("x", "great location fantastic")])
        assert p.top() == "DESCRIPTION"

    def test_symbol_signal(self):
        learner = fitted()
        [p] = learner.predict([make_instance("x", "$ 425,000")])
        assert p.top() == "PRICE"

    def test_state_abbreviation_signal(self):
        learner = fitted()
        [p] = learner.predict([make_instance("x", "Austin, TX, FL area")])
        assert p.top() == "ADDRESS"

    def test_stemming_generalizes(self):
        # 'houses' must hit the training token 'house' via stemming.
        learner = fitted()
        [p] = learner.predict([make_instance("x", "fantastic houses")])
        assert p.top() == "DESCRIPTION"

    def test_rows_are_distributions(self):
        learner = fitted()
        scores = learner.predict_scores(
            [make_instance("x", t) for t in ["great", "$", "zzz", ""]])
        assert np.allclose(scores.sum(axis=1), 1.0)
        assert np.all(scores >= 0)

    def test_empty_content_falls_back_to_prior(self):
        learner = fitted()
        scores = learner.predict_scores([make_instance("x", "")])
        # Priors are equal here (3 examples each + OTHER smoothing), so no
        # real label should dominate.
        real = [scores[0, SPACE.index_of(l)]
                for l in ("DESCRIPTION", "ADDRESS", "PRICE")]
        assert np.allclose(real, real[0])

    def test_unseen_label_keeps_tiny_probability(self):
        learner = fitted()
        scores = learner.predict_scores([make_instance("x", "great")])
        assert scores[0, SPACE.other_index] >= 0.0
        assert scores[0, SPACE.other_index] < scores[
            0, SPACE.index_of("DESCRIPTION")]


class TestMechanics:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            NaiveBayesLearner().fit([make_instance("x", "a")], ["A", "B"],
                                    SPACE)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesLearner().predict_scores([make_instance("x", "a")])

    def test_clone_unfitted_same_alpha(self):
        learner = NaiveBayesLearner(alpha=0.5)
        clone = learner.clone()
        assert clone.alpha == 0.5
        assert clone.space is None

    def test_alpha_smoothing_effect(self):
        # Higher alpha flattens the distribution.
        sharp = fitted(alpha=0.01)
        flat = fitted(alpha=100.0)
        query = [make_instance("x", "fantastic")]
        sharp_top = sharp.predict_scores(query).max()
        flat_top = flat.predict_scores(query).max()
        assert sharp_top > flat_top

    @given(st.lists(st.sampled_from(
        ["great", "fantastic", "miami", "fl", "$", "70000", "zzz"]),
        min_size=0, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_any_bag_yields_distribution(self, words):
        learner = fitted()
        scores = learner.predict_scores(
            [make_instance("x", " ".join(words))])
        assert scores.shape == (1, len(SPACE))
        assert np.isclose(scores.sum(), 1.0)
