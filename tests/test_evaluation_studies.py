"""Fast unit tests for the study runners (lesion, information,
sensitivity) on a tiny settings profile."""

import pytest

from repro.datasets import load_domain
from repro.evaluation import (ExperimentSettings, run_information_study,
                              run_ladder, run_lesion_study,
                              run_sensitivity, sensitivity_series,
                              study_table)

TINY = ExperimentSettings(n_listings=12, trials=1, max_splits=1,
                          max_instances_per_tag=12)


@pytest.fixture(scope="module")
def domain():
    return load_domain("faculty", seed=0)


class TestLadder:
    def test_keys_and_counts(self, domain):
        ladder = run_ladder(domain, TINY)
        assert set(ladder) == {"best_base", "meta", "constraints",
                               "complete"}
        # 1 trial x 1 split x 2 test sources = 2 observations each.
        for result in ladder.values():
            assert result.overall.count == 2

    def test_best_base_picks_maximum(self, domain):
        ladder = run_ladder(domain, TINY,
                            base_learner_pool=("name_matcher",
                                               "naive_bayes"))
        assert ladder["best_base"].config_name.startswith("single[")


class TestLesion:
    def test_all_variants_present(self, domain):
        study = run_lesion_study(domain, TINY)
        assert set(study) == {
            "without name matcher", "without naive bayes",
            "without content matcher", "without constraint handler",
            "complete"}
        for result in study.values():
            assert 0.0 <= result.mean_accuracy <= 1.0

    def test_table_renders(self, domain):
        study = run_lesion_study(domain, TINY)
        out = study_table({"faculty": study}, "Lesion")
        assert "without name matcher" in out


class TestInformation:
    def test_variants(self, domain):
        study = run_information_study(domain, TINY)
        assert set(study) == {"schema only", "data only", "complete"}

    def test_complete_at_least_as_good_as_parts(self, domain):
        study = run_information_study(domain, TINY)
        complete = study["complete"].mean_accuracy
        assert complete >= study["schema only"].mean_accuracy - 0.1
        assert complete >= study["data only"].mean_accuracy - 0.1


class TestSensitivity:
    def test_sweep_structure(self, domain):
        sweep = run_sensitivity(domain, TINY, listing_counts=(4, 8))
        assert set(sweep) == {4, 8}
        for ladder in sweep.values():
            assert "complete" in ladder

    def test_series_renders(self, domain):
        sweep = run_sensitivity(domain, TINY, listing_counts=(4, 8))
        out = sensitivity_series(sweep, "title")
        lines = out.splitlines()
        assert lines[0] == "title"
        assert any(line.startswith("4") for line in lines)
