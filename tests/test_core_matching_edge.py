"""Edge-case and failure-injection tests for the matching pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (LSDSystem, LabelSpace, Mapping, MediatedSchema,
                        PredictionConverter, SourceSchema, match_source,
                        normalize_matrix)
from repro.core.matching import MatchResult
from repro.constraints import ConstraintHandler, MatchContext
from repro.learners import NaiveBayesLearner, NameMatcher
from repro.learners.meta import StackingMetaLearner
from repro.xmlio import parse_fragments

MEDIATED = MediatedSchema("""
<!ELEMENT L (A, B)>
<!ELEMENT A (#PCDATA)>
<!ELEMENT B (#PCDATA)>
""")

SOURCE = SourceSchema("""
<!ELEMENT l (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
""")


def trained_system(**kwargs) -> LSDSystem:
    system = LSDSystem(MEDIATED, [NameMatcher(), NaiveBayesLearner()],
                       **kwargs)
    listings = parse_fragments(
        "<l><a>alpha apple avocado</a><b>berry banana blue</b></l>" * 1)
    system.add_training_source(SOURCE, listings * 6,
                               {"a": "A", "b": "B"})
    system.train()
    return system


class TestEmptyAndDegenerateInputs:
    def test_match_with_zero_listings(self):
        system = trained_system()
        result = system.match(SOURCE, [])
        # Columns are empty -> uniform predictions, but a full mapping is
        # still produced for every tag.
        assert set(result.mapping.tags()) == {"a", "b"}

    def test_match_source_with_optional_tag_never_present(self):
        system = trained_system()
        sparse_schema = SourceSchema(
            "<!ELEMENT l (a, b?)><!ELEMENT a (#PCDATA)>"
            "<!ELEMENT b (#PCDATA)>")
        listings = parse_fragments("<l><a>alpha apple</a></l>")
        result = system.match(sparse_schema, listings)
        assert "b" in result.mapping

    def test_single_tag_source(self):
        system = trained_system()
        schema = SourceSchema("<!ELEMENT l (x)><!ELEMENT x (#PCDATA)>")
        listings = parse_fragments("<l><x>berry banana</x></l>")
        result = system.match(schema, listings)
        assert result.mapping["x"] == "B"

    def test_listings_with_unknown_tags_ignored(self):
        system = trained_system()
        # Data contains a tag the schema does not declare: extraction
        # only collects declared tags.
        listings = parse_fragments(
            "<l><a>alpha</a><b>berry</b><zz>noise</zz></l>")
        result = system.match(SOURCE, listings)
        assert "zz" not in result.mapping

    def test_duplicate_learner_names_rejected(self):
        system = LSDSystem(MEDIATED,
                           [NaiveBayesLearner(), NaiveBayesLearner()])
        listings = parse_fragments("<l><a>x</a><b>y</b></l>")
        system.add_training_source(SOURCE, listings,
                                   {"a": "A", "b": "B"})
        with pytest.raises(ValueError):
            system.train()


class TestMatchResultHelpers:
    def test_ambiguous_tags_detection(self):
        space = LabelSpace(["A", "B"])
        scores = {
            "sharp": np.array([0.9, 0.05, 0.05]),
            "fuzzy": np.array([0.4, 0.38, 0.22]),
        }
        result = MatchResult(
            Mapping({"sharp": "A", "fuzzy": "A"}), scores, space, {},
            MatchContext(SOURCE))
        assert result.ambiguous_tags(threshold=0.1) == ["fuzzy"]

    def test_top_candidates_ordering(self):
        space = LabelSpace(["A", "B"])
        scores = {"t": np.array([0.2, 0.7, 0.1])}
        result = MatchResult(Mapping({"t": "B"}), scores, space, {},
                             MatchContext(SOURCE))
        candidates = result.top_candidates("t", 3)
        assert [c[0] for c in candidates] == ["B", "A", "OTHER"]


class TestScoreFilterHook:
    def test_score_filter_applied_before_handler(self):
        system = trained_system()
        listings = parse_fragments(
            "<l><a>alpha apple</a><b>berry banana</b></l>")

        def flip(tag_scores, columns):
            # Force every tag to OTHER: the mapping must follow.
            space_size = len(system.space)
            forced = np.zeros(space_size)
            forced[system.space.other_index] = 1.0
            return {tag: forced for tag in tag_scores}

        result = match_source(
            SOURCE, listings, system.learners, system.meta,
            system.converter, system.handler, system.space,
            score_filter=flip)
        assert all(label == "OTHER" for __, label in
                   result.mapping.items())


class TestNormalizeMatrixProperties:
    @given(st.lists(st.lists(st.floats(-5, 5), min_size=3, max_size=3),
                    min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_rows_become_distributions(self, rows):
        matrix = normalize_matrix(np.array(rows))
        assert np.all(matrix >= 0)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_all_negative_row_goes_uniform(self):
        matrix = normalize_matrix(np.array([[-1.0, -2.0, -3.0]]))
        assert np.allclose(matrix, 1.0 / 3)


class TestHandlerPropertyVsArgmax:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_no_constraints_equals_argmax(self, seed):
        """Without constraints the handler must reproduce argmax."""
        rng = np.random.default_rng(seed)
        space = LabelSpace(["A", "B", "C"])
        tags = ["t1", "t2", "t3"]
        scores = {tag: rng.dirichlet(np.ones(len(space)))
                  for tag in tags}
        handler = ConstraintHandler()
        ctx = MatchContext(SOURCE)
        mapping = handler.find_mapping(scores, space, ctx)
        for tag in tags:
            assert mapping[tag] == space.label_at(
                int(np.argmax(scores[tag])))
