"""Tests for the shared token/feature cache."""

import numpy as np

from repro.core import featurize
from repro.text import remove_stopwords, stem_tokens, tokenize

from .helpers import make_instance


def pipeline(text: str) -> list[str]:
    return stem_tokens(remove_stopwords(tokenize(text)))


class TestContentTokens:
    def test_matches_direct_pipeline(self):
        instance = make_instance("comments", "Beautiful houses near Kent")
        assert featurize.content_tokens(instance) == \
            pipeline(instance.text)

    def test_instance_slot_reused(self):
        instance = make_instance("comments", "unique-slot-check text")
        first = featurize.content_tokens(instance)
        before = featurize.stats.misses
        second = featurize.content_tokens(instance)
        assert second is first  # the cached list itself
        assert featurize.stats.misses == before

    def test_text_memo_shared_across_instances(self):
        a = make_instance("city", "Salem, OR shared-memo")
        b = make_instance("town", "Salem, OR shared-memo")
        tokens_a = featurize.content_tokens(a)
        before = featurize.stats.misses
        tokens_b = featurize.content_tokens(b)
        # Same raw text: the second instance reuses the memoised list.
        assert tokens_b is tokens_a
        assert featurize.stats.misses == before

    def test_invalidate_clears_slot(self):
        instance = make_instance("comments", "text to invalidate")
        featurize.content_tokens(instance)
        featurize.invalidate(instance)
        assert featurize._CONTENT not in instance.feature_cache

    def test_warm_prefills(self):
        instances = [make_instance("t", f"warm target {i}")
                     for i in range(3)]
        featurize.warm(instances)
        assert all(featurize._CONTENT in inst.feature_cache
                   for inst in instances)


class TestNodeWords:
    def test_leaf_shortcut_equals_direct_tokens(self):
        instance = make_instance("phone", "(206) 634 9435")
        via_cache = featurize.node_words(instance, instance.element)
        assert via_cache == pipeline(instance.element.immediate_text())

    def test_non_leaf_uses_immediate_text(self):
        instance = make_instance(
            "contact", children=[("name", "Ann Lee"), ("phone", "555")])
        words = featurize.node_words(instance, instance.element)
        # Immediate text of the parent excludes the children's text.
        assert words == pipeline(instance.element.immediate_text())
        child = instance.element.children[0]
        assert featurize.node_words(instance, child) == \
            pipeline(child.immediate_text())


class TestSwitch:
    def test_cache_disabled_bypasses_memoisation(self):
        instance = make_instance("comments", "bypass this text")
        with featurize.cache_disabled():
            assert not featurize.is_enabled()
            first = featurize.content_tokens(instance)
            second = featurize.content_tokens(instance)
            assert first == second
            assert first is not second  # recomputed, not cached
            assert instance.feature_cache == {}
        assert featurize.is_enabled()

    def test_disabled_results_identical_to_cached(self):
        instance = make_instance("comments", "identical either way")
        cached = featurize.content_tokens(instance)
        with featurize.cache_disabled():
            assert featurize.content_tokens(instance) == cached

    def test_switch_restored_on_error(self):
        try:
            with featurize.cache_disabled():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert featurize.is_enabled()


class TestStats:
    def test_hits_and_misses_counted(self):
        featurize.stats.reset()
        featurize.clear_text_cache()
        instance = make_instance("comments", "count these lookups")
        featurize.content_tokens(instance)
        featurize.content_tokens(instance)
        assert featurize.stats.misses == 1
        assert featurize.stats.hits == 1
        assert featurize.stats.hit_rate == 0.5
        assert featurize.stats.as_dict()["hits"] == 1

    def test_clear_text_cache_forces_miss(self):
        featurize.pipeline_tokens("cleared text sample")
        featurize.clear_text_cache()
        before = featurize.stats.misses
        featurize.pipeline_tokens("cleared text sample")
        assert featurize.stats.misses == before + 1

    def test_shared_lists_not_mutated_by_learners(self):
        """The cache contract: consumers treat token lists as immutable.
        A matching run over cached instances must leave them intact."""
        instance = make_instance("comments", "great view of the river")
        tokens = featurize.content_tokens(instance)
        snapshot = list(tokens)
        copy = np.array(tokens)  # consumers may vectorise freely
        assert list(copy) == snapshot
        assert featurize.content_tokens(instance) == snapshot
