"""Tests for the §7/§9 extension features: label hierarchies,
type-compatibility pruning, and confirmed-source reuse."""

import numpy as np
import pytest

from repro.core import (LabelHierarchy, LabelSpace, Prediction,
                        SourceSchema, TypeProfile, TypePruner,
                        extract_columns, generalize_prediction)
from repro.xmlio import parse_fragments

from .helpers import make_instance


class TestLabelHierarchy:
    def make(self):
        return LabelHierarchy([
            ("CREDIT", "COURSE-CREDIT"),
            ("CREDIT", "SECTION-CREDIT"),
            ("CONTACT", "AGENT-PHONE"),
            ("CONTACT", "OFFICE-PHONE"),
        ])

    def test_parent_child(self):
        h = self.make()
        assert h.parent_of("COURSE-CREDIT") == "CREDIT"
        assert h.children_of("CREDIT") == {"COURSE-CREDIT",
                                           "SECTION-CREDIT"}
        assert h.parent_of("CREDIT") is None

    def test_ancestors_and_descendants(self):
        h = self.make()
        h.add("ROOT", "CREDIT")
        assert h.ancestors_of("COURSE-CREDIT") == ["CREDIT", "ROOT"]
        assert h.descendants_of("ROOT") == {
            "CREDIT", "COURSE-CREDIT", "SECTION-CREDIT"}

    def test_lowest_common_ancestor(self):
        h = self.make()
        assert h.lowest_common_ancestor(
            "COURSE-CREDIT", "SECTION-CREDIT") == "CREDIT"
        assert h.lowest_common_ancestor(
            "COURSE-CREDIT", "AGENT-PHONE") is None
        assert h.lowest_common_ancestor(
            "CREDIT", "COURSE-CREDIT") == "CREDIT"

    def test_cycle_rejected(self):
        h = self.make()
        with pytest.raises(ValueError):
            h.add("COURSE-CREDIT", "CREDIT")
        with pytest.raises(ValueError):
            h.add("X", "X")

    def test_double_parent_rejected(self):
        h = self.make()
        with pytest.raises(ValueError):
            h.add("OTHER-PARENT", "COURSE-CREDIT")

    def test_contains_and_len(self):
        h = self.make()
        assert "CREDIT" in h and "COURSE-CREDIT" in h
        assert "NOPE" not in h
        assert len(h) == 4


class TestGeneralizePrediction:
    SPACE = LabelSpace(["COURSE-CREDIT", "SECTION-CREDIT", "PRICE"])

    def hierarchy(self):
        return LabelHierarchy([
            ("CREDIT", "COURSE-CREDIT"), ("CREDIT", "SECTION-CREDIT")])

    def test_unambiguous_keeps_top(self):
        """The paper's §7 scenario: course- vs section-credits split."""
        p = Prediction.from_dict(self.SPACE, {
            "COURSE-CREDIT": 0.8, "SECTION-CREDIT": 0.15, "PRICE": 0.05})
        assert generalize_prediction(p, self.hierarchy()) == \
            "COURSE-CREDIT"

    def test_ambiguous_siblings_back_off(self):
        p = Prediction.from_dict(self.SPACE, {
            "COURSE-CREDIT": 0.46, "SECTION-CREDIT": 0.44, "PRICE": 0.1})
        assert generalize_prediction(p, self.hierarchy()) == "CREDIT"

    def test_ambiguous_unrelated_labels_keep_top(self):
        p = Prediction.from_dict(self.SPACE, {
            "COURSE-CREDIT": 0.45, "PRICE": 0.44,
            "SECTION-CREDIT": 0.11})
        assert generalize_prediction(p, self.hierarchy()) == \
            "COURSE-CREDIT"

    def test_low_family_mass_keeps_top(self):
        # Siblings are ambiguous but their combined mass (0.78) is below
        # the requested coverage, so the backoff is not justified.
        p = Prediction.from_dict(self.SPACE, {
            "COURSE-CREDIT": 0.40, "SECTION-CREDIT": 0.38, "PRICE": 0.22})
        assert generalize_prediction(p, self.hierarchy(),
                                     coverage=0.9) == "COURSE-CREDIT"


SCHEMA = SourceSchema("""
<!ELEMENT l (beds, city, note)>
<!ELEMENT beds (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT note (#PCDATA)>
""")


class TestTypeProfile:
    def test_numeric_texts(self):
        profile = TypeProfile.of_texts(["3", "4", "2.5"])
        assert profile.numeric_rate == 1.0

    def test_textual_texts(self):
        profile = TypeProfile.of_texts(["great house", "nice yard"])
        assert profile.numeric_rate == 0.0
        assert profile.mean_tokens == 2.0

    def test_mixed_value_counts_as_textual(self):
        profile = TypeProfile.of_texts(["3 beds"])
        assert profile.numeric_rate == 0.0

    def test_empty(self):
        assert TypeProfile.of_texts([]).samples == 0


class TestTypePruner:
    SPACE = LabelSpace(["BEDS", "CITY"])

    def fitted(self):
        pruner = TypePruner(min_samples=3)
        instances = (
            [make_instance("b", str(i)) for i in range(1, 7)]
            + [make_instance("c", text) for text in
               ["Miami", "Boston", "Seattle", "Austin", "Denver",
                "Kent"]])
        labels = ["BEDS"] * 6 + ["CITY"] * 6
        pruner.fit(instances, labels, self.SPACE)
        return pruner

    def column(self, texts):
        listings = parse_fragments("".join(
            f"<l><beds>{t}</beds><city>x</city><note>n</note></l>"
            for t in texts))
        return extract_columns(SCHEMA, listings)["beds"]

    def test_numeric_column_prunes_textual_label(self):
        pruner = self.fitted()
        column = self.column(["1", "2", "3", "4", "5"])
        assert pruner.incompatible_labels(column) == {"CITY"}

    def test_textual_column_prunes_numeric_label(self):
        pruner = self.fitted()
        column = self.column(["aa", "bb", "cc", "dd", "ee"])
        assert pruner.incompatible_labels(column) == {"BEDS"}

    def test_small_column_never_pruned(self):
        pruner = self.fitted()
        column = self.column(["1", "2"])
        assert pruner.incompatible_labels(column) == set()

    def test_prune_scores_renormalises(self):
        pruner = self.fitted()
        listings = parse_fragments("".join(
            f"<l><beds>{i}</beds><city>x</city><note>n</note></l>"
            for i in range(1, 7)))
        columns = extract_columns(SCHEMA, listings)
        scores = {"beds": np.array([0.3, 0.6, 0.1])}  # CITY wrongly on top
        pruned = pruner.prune_scores(scores, columns)
        assert pruned["beds"][self.SPACE.index_of("CITY")] == 0.0
        assert pruned["beds"].sum() == pytest.approx(1.0)
        assert np.argmax(pruned["beds"]) == self.SPACE.index_of("BEDS")

    def test_prune_never_empties_a_row(self):
        pruner = self.fitted()
        listings = parse_fragments("".join(
            f"<l><beds>{i}</beds><city>x</city><note>n</note></l>"
            for i in range(1, 7)))
        columns = extract_columns(SCHEMA, listings)
        # All mass on the (incompatible) CITY label: pruning would zero
        # the row, so the row must be left untouched.
        scores = {"beds": np.array([0.0, 1.0, 0.0])}
        pruned = pruner.prune_scores(scores, columns)
        assert pruned["beds"][self.SPACE.index_of("CITY")] == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TypePruner().incompatible_labels(self.column(["1"] * 6))


class TestConfirmAndLearn:
    def test_reuse_improves_and_retrains(self):
        from repro.datasets import load_domain
        from repro.evaluation import SystemConfig, build_system

        domain = load_domain("real_estate_1", seed=0)
        system = build_system(domain, SystemConfig("complete"),
                              max_instances_per_tag=20)
        for source in domain.sources[:2]:
            system.add_training_source(source.schema,
                                       source.listings(20),
                                       source.mapping)
        system.train()
        assert len(system.training_sources) == 2

        third = domain.sources[2]
        system.confirm_and_learn(third.schema, third.listings(20),
                                 third.mapping)
        assert len(system.training_sources) == 3
        assert system.is_trained  # retrained automatically

    def test_pruned_system_end_to_end(self):
        from repro.datasets import load_domain
        from repro.learners import NaiveBayesLearner, NameMatcher
        from repro.core import LSDSystem

        domain = load_domain("real_estate_1", seed=0)
        system = LSDSystem(domain.mediated_schema,
                           [NameMatcher(synonyms=domain.synonyms),
                            NaiveBayesLearner()],
                           constraints=domain.constraints,
                           prune_types=True,
                           max_instances_per_tag=25)
        for source in domain.sources[:3]:
            system.add_training_source(source.schema,
                                       source.listings(25),
                                       source.mapping)
        system.train()
        assert system.pruner is not None and system.pruner.is_fitted
        test = domain.sources[4]
        result = system.match(test.schema, test.listings(25))
        assert result.mapping.accuracy_against(test.mapping) >= 0.6
