"""Property tests: the branch-and-bound handler finds the true optimum.

On small random instances, the handler's mapping is compared against a
brute-force enumeration of every complete assignment under the same cost
model — hard constraints, soft costs, and -log probability included.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (AssignmentConstraint, ConstraintHandler,
                               ExclusionConstraint, ExclusivityConstraint,
                               FrequencyConstraint, MatchContext,
                               MaxCountSoftConstraint, NestingConstraint,
                               ProximityConstraint)
from repro.core import LabelSpace, Mapping, SourceSchema
from repro.core.parallel import ParallelExecutor

SCHEMA = SourceSchema("""
<!ELEMENT l (g, p, q)>
<!ELEMENT g (x, y)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
<!ELEMENT p (#PCDATA)>
<!ELEMENT q (#PCDATA)>
""")

SPACE = LabelSpace(["GROUP", "ALPHA", "BETA"])
TAGS = ("g", "x", "y", "p", "q")


def brute_force_best(scores, handler, ctx, extra_constraints=()):
    """Exhaustive minimum-cost complete assignment (None if infeasible)."""
    from repro.constraints.base import split_constraints

    hard, soft = split_constraints(
        [*handler.constraints, *extra_constraints])
    best_cost = math.inf
    best = None
    labels = SPACE.labels
    for combo in itertools.product(labels, repeat=len(TAGS)):
        assignment = dict(zip(TAGS, combo))
        if any(c.check_complete(assignment, ctx) for c in hard):
            continue
        cost = sum(
            handler.soft_weights.get(c.kind, 1.0) * c.cost(assignment, ctx)
            for c in soft)
        for tag, label in assignment.items():
            score = max(float(scores[tag][SPACE.index_of(label)]),
                        handler.epsilon)
            cost += -handler.prob_weight * math.log(score)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = assignment
    return best, best_cost


CONSTRAINT_SETS = [
    [],
    [FrequencyConstraint.at_most_one("ALPHA")],
    [FrequencyConstraint.exactly_one("BETA")],
    [NestingConstraint("GROUP", "ALPHA")],
    [ExclusivityConstraint("ALPHA", "BETA")],
    [FrequencyConstraint.at_most_one("GROUP"),
     NestingConstraint("GROUP", "ALPHA"),
     MaxCountSoftConstraint("BETA", 1)],
]


class TestOptimality:
    @given(seed=st.integers(0, 10_000),
           constraint_index=st.integers(0, len(CONSTRAINT_SETS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_handler_matches_brute_force_cost(self, seed,
                                              constraint_index):
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        handler = ConstraintHandler(
            CONSTRAINT_SETS[constraint_index],
            candidates_per_tag=len(SPACE))  # no candidate truncation
        ctx = MatchContext(SCHEMA)

        mapping = handler.find_mapping(scores, SPACE, ctx)
        expected, expected_cost = brute_force_best(scores, handler, ctx)

        assert expected is not None  # all sets are satisfiable here
        actual_cost = handler.mapping_cost(mapping, scores, SPACE, ctx)
        # Costs must agree (assignments may tie, so compare costs).
        assert actual_cost == pytest.approx(expected_cost, abs=1e-9)

    @given(seed=st.integers(0, 10_000),
           max_count=st.integers(0, 2),
           violation_cost=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_soft_costs_reach_the_optimum(self, seed, max_count,
                                          violation_cost):
        """Soft constraints with non-trivial weights and costs steer the
        search, and the incremental soft bounds never cut the optimum."""
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        constraints = [
            MaxCountSoftConstraint("ALPHA", max_count, violation_cost),
            MaxCountSoftConstraint("BETA", 1),
            ProximityConstraint("ALPHA", "BETA"),
        ]
        handler = ConstraintHandler(
            constraints, candidates_per_tag=len(SPACE),
            soft_weights={"binary": 1.5, "numeric": 0.25})
        ctx = MatchContext(SCHEMA)

        mapping = handler.find_mapping(scores, SPACE, ctx)
        expected, expected_cost = brute_force_best(scores, handler, ctx)
        actual_cost = handler.mapping_cost(mapping, scores, SPACE, ctx)
        assert actual_cost == pytest.approx(expected_cost, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_feedback_extra_constraints_reach_the_optimum(self, seed):
        """Pinned (AssignmentConstraint) and excluded (Exclusion
        Constraint) feedback flows through ``extra_constraints`` — the
        pinned tag takes the single-candidate path in ``_candidates``."""
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        handler = ConstraintHandler(
            [FrequencyConstraint.at_most_one("ALPHA"),
             MaxCountSoftConstraint("BETA", 1)],
            candidates_per_tag=len(SPACE))
        ctx = MatchContext(SCHEMA)
        feedback = [AssignmentConstraint("p", "BETA"),
                    ExclusionConstraint("q", "ALPHA")]

        mapping = handler.find_mapping(scores, SPACE, ctx,
                                       extra_constraints=feedback)
        expected, expected_cost = brute_force_best(
            scores, handler, ctx, extra_constraints=feedback)
        assert expected is not None
        assert mapping["p"] == "BETA"
        assert mapping["q"] != "ALPHA"
        actual_cost = handler.mapping_cost(
            mapping, scores, SPACE, ctx, extra_constraints=feedback)
        assert actual_cost == pytest.approx(expected_cost, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_required_label_injected_into_candidates(self, seed):
        """An exactly-one label must be reachable even when truncation
        (candidates_per_tag=1) would drop it from every tag's top-k."""
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        handler = ConstraintHandler(
            [FrequencyConstraint.exactly_one("BETA")],
            candidates_per_tag=1)
        ctx = MatchContext(SCHEMA)
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assigned = [tag for tag in TAGS if mapping[tag] == "BETA"]
        assert len(assigned) == 1
        assert handler.violations(mapping, ctx) == []

    @given(seed=st.integers(0, 10_000),
           constraint_index=st.integers(0, len(CONSTRAINT_SETS) - 1))
    @settings(max_examples=30, deadline=None)
    def test_astar_matches_branch_and_bound(self, seed, constraint_index):
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        constraints = CONSTRAINT_SETS[constraint_index]
        ctx = MatchContext(SCHEMA)
        bnb = ConstraintHandler(constraints,
                                candidates_per_tag=len(SPACE))
        a_star = ConstraintHandler(constraints,
                                   candidates_per_tag=len(SPACE),
                                   search="astar")
        mapping_bnb = bnb.find_mapping(scores, SPACE, ctx)
        mapping_astar = a_star.find_mapping(scores, SPACE, ctx)
        assert a_star.last_stats["strategy"] == "astar"
        cost_bnb = bnb.mapping_cost(mapping_bnb, scores, SPACE, ctx)
        cost_astar = a_star.mapping_cost(mapping_astar, scores, SPACE,
                                         ctx)
        assert cost_astar == pytest.approx(cost_bnb, abs=1e-9)

    @given(seed=st.integers(0, 10_000),
           constraint_index=st.integers(0, len(CONSTRAINT_SETS) - 1))
    @settings(max_examples=25, deadline=None)
    def test_workers_byte_identical(self, seed, constraint_index):
        """The parallel root-split returns the same mapping at any
        worker count — including ties in the score rows."""
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        # Force exact cost ties on two tags to exercise the (cost, path)
        # lexicographic tie-break, not just distinct costs.
        scores["p"] = np.full(len(SPACE), 1.0 / len(SPACE))
        scores["q"] = scores["p"].copy()
        constraints = CONSTRAINT_SETS[constraint_index]
        ctx = MatchContext(SCHEMA)
        reference = None
        for workers in (1, 2, 5):
            handler = ConstraintHandler(constraints,
                                        candidates_per_tag=len(SPACE))
            mapping = handler.find_mapping(
                scores, SPACE, ctx,
                executor=ParallelExecutor(workers))
            as_dict = {tag: mapping[tag] for tag in TAGS}
            if reference is None:
                reference = as_dict
            else:
                assert as_dict == reference, \
                    f"workers={workers} diverged from serial"

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_handler_never_violates_hard_constraints(self, seed):
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        constraints = [FrequencyConstraint.at_most_one("ALPHA"),
                       FrequencyConstraint.at_most_one("BETA"),
                       NestingConstraint("GROUP", "ALPHA")]
        handler = ConstraintHandler(constraints)
        ctx = MatchContext(SCHEMA)
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert handler.violations(mapping, ctx) == [] or all(
            c.kind == "binary" for c in handler.violations(mapping, ctx))
