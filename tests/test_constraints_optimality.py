"""Property tests: the branch-and-bound handler finds the true optimum.

On small random instances, the handler's mapping is compared against a
brute-force enumeration of every complete assignment under the same cost
model — hard constraints, soft costs, and -log probability included.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import (ConstraintHandler, ExclusivityConstraint,
                               FrequencyConstraint, MatchContext,
                               MaxCountSoftConstraint, NestingConstraint)
from repro.core import LabelSpace, Mapping, SourceSchema

SCHEMA = SourceSchema("""
<!ELEMENT l (g, p, q)>
<!ELEMENT g (x, y)>
<!ELEMENT x (#PCDATA)>
<!ELEMENT y (#PCDATA)>
<!ELEMENT p (#PCDATA)>
<!ELEMENT q (#PCDATA)>
""")

SPACE = LabelSpace(["GROUP", "ALPHA", "BETA"])
TAGS = ("g", "x", "y", "p", "q")


def brute_force_best(scores, handler, ctx):
    """Exhaustive minimum-cost complete assignment (None if infeasible)."""
    from repro.constraints.base import split_constraints

    hard, soft = split_constraints(handler.constraints)
    best_cost = math.inf
    best = None
    labels = SPACE.labels
    for combo in itertools.product(labels, repeat=len(TAGS)):
        assignment = dict(zip(TAGS, combo))
        if any(c.check_complete(assignment, ctx) for c in hard):
            continue
        cost = sum(
            handler.soft_weights.get(c.kind, 1.0) * c.cost(assignment, ctx)
            for c in soft)
        for tag, label in assignment.items():
            score = max(float(scores[tag][SPACE.index_of(label)]),
                        handler.epsilon)
            cost += -handler.prob_weight * math.log(score)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = assignment
    return best, best_cost


CONSTRAINT_SETS = [
    [],
    [FrequencyConstraint.at_most_one("ALPHA")],
    [FrequencyConstraint.exactly_one("BETA")],
    [NestingConstraint("GROUP", "ALPHA")],
    [ExclusivityConstraint("ALPHA", "BETA")],
    [FrequencyConstraint.at_most_one("GROUP"),
     NestingConstraint("GROUP", "ALPHA"),
     MaxCountSoftConstraint("BETA", 1)],
]


class TestOptimality:
    @given(seed=st.integers(0, 10_000),
           constraint_index=st.integers(0, len(CONSTRAINT_SETS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_handler_matches_brute_force_cost(self, seed,
                                              constraint_index):
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        handler = ConstraintHandler(
            CONSTRAINT_SETS[constraint_index],
            candidates_per_tag=len(SPACE))  # no candidate truncation
        ctx = MatchContext(SCHEMA)

        mapping = handler.find_mapping(scores, SPACE, ctx)
        expected, expected_cost = brute_force_best(scores, handler, ctx)

        assert expected is not None  # all sets are satisfiable here
        actual_cost = handler.mapping_cost(mapping, scores, SPACE, ctx)
        # Costs must agree (assignments may tie, so compare costs).
        assert actual_cost == pytest.approx(expected_cost, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_handler_never_violates_hard_constraints(self, seed):
        rng = np.random.default_rng(seed)
        scores = {tag: rng.dirichlet(np.ones(len(SPACE)))
                  for tag in TAGS}
        constraints = [FrequencyConstraint.at_most_one("ALPHA"),
                       FrequencyConstraint.at_most_one("BETA"),
                       NestingConstraint("GROUP", "ALPHA")]
        handler = ConstraintHandler(constraints)
        ctx = MatchContext(SCHEMA)
        mapping = handler.find_mapping(scores, SPACE, ctx)
        assert handler.violations(mapping, ctx) == [] or all(
            c.kind == "binary" for c in handler.violations(mapping, ctx))
