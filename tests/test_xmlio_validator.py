"""Unit tests for DTD validation of parsed documents."""

import pytest

from repro.xmlio import (ValidationError, is_valid, parse_dtd,
                         parse_element, validate)

DTD_TEXT = """
<!ELEMENT house-listing (location?, price, contact)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT contact (name, phone+)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
"""


@pytest.fixture
def dtd():
    return parse_dtd(DTD_TEXT)


def listing(body: str) -> str:
    return f"<house-listing>{body}</house-listing>"


CONTACT = "<contact><name>Kate</name><phone>555</phone></contact>"


class TestValid:
    def test_full_listing(self, dtd):
        doc = parse_element(listing(
            "<location>Seattle</location><price>$70,000</price>" + CONTACT))
        validate(doc, dtd)

    def test_optional_element_omitted(self, dtd):
        doc = parse_element(listing("<price>$1</price>" + CONTACT))
        validate(doc, dtd)

    def test_repeated_plus_element(self, dtd):
        doc = parse_element(listing(
            "<price>$1</price><contact><name>K</name>"
            "<phone>1</phone><phone>2</phone></contact>"))
        validate(doc, dtd)

    def test_is_valid_true(self, dtd):
        doc = parse_element(listing("<price>$1</price>" + CONTACT))
        assert is_valid(doc, dtd)


class TestInvalid:
    def test_wrong_root(self, dtd):
        with pytest.raises(ValidationError):
            validate(parse_element("<listing/>"), dtd)

    def test_missing_required_child(self, dtd):
        doc = parse_element(listing("<location>Seattle</location>" + CONTACT))
        with pytest.raises(ValidationError):
            validate(doc, dtd)

    def test_wrong_order(self, dtd):
        doc = parse_element(listing(
            CONTACT + "<price>$1</price>"))
        with pytest.raises(ValidationError):
            validate(doc, dtd)

    def test_undeclared_element(self, dtd):
        doc = parse_element(listing(
            "<price>$1</price>" + CONTACT + "<extra>x</extra>"))
        with pytest.raises(ValidationError):
            validate(doc, dtd)

    def test_text_in_element_only_content(self, dtd):
        doc = parse_element(listing(
            "stray text<price>$1</price>" + CONTACT))
        with pytest.raises(ValidationError):
            validate(doc, dtd)

    def test_zero_phones_violates_plus(self, dtd):
        doc = parse_element(listing(
            "<price>$1</price><contact><name>K</name></contact>"))
        with pytest.raises(ValidationError):
            validate(doc, dtd)

    def test_error_reports_path(self, dtd):
        doc = parse_element(listing(
            "<price>$1</price><contact><name>K</name></contact>"))
        with pytest.raises(ValidationError) as excinfo:
            validate(doc, dtd)
        assert "contact" in str(excinfo.value)


class TestContentModels:
    def test_choice(self):
        dtd = parse_dtd("<!ELEMENT x (a | b)><!ELEMENT a EMPTY>"
                        "<!ELEMENT b EMPTY>")
        assert is_valid(parse_element("<x><a/></x>"), dtd)
        assert is_valid(parse_element("<x><b/></x>"), dtd)
        assert not is_valid(parse_element("<x><a/><b/></x>"), dtd)
        assert not is_valid(parse_element("<x/>"), dtd)

    def test_star_group(self):
        dtd = parse_dtd("<!ELEMENT x (a, b)*><!ELEMENT a EMPTY>"
                        "<!ELEMENT b EMPTY>")
        assert is_valid(parse_element("<x/>"), dtd)
        assert is_valid(parse_element("<x><a/><b/><a/><b/></x>"), dtd)
        assert not is_valid(parse_element("<x><a/></x>"), dtd)

    def test_nested_choice_in_sequence(self):
        dtd = parse_dtd("<!ELEMENT x (a, (b | c), d)><!ELEMENT a EMPTY>"
                        "<!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
                        "<!ELEMENT d EMPTY>")
        assert is_valid(parse_element("<x><a/><c/><d/></x>"), dtd)
        assert not is_valid(parse_element("<x><a/><d/></x>"), dtd)

    def test_mixed_content(self):
        dtd = parse_dtd("<!ELEMENT d (#PCDATA | em)*><!ELEMENT em (#PCDATA)>")
        assert is_valid(parse_element("<d>hello <em>world</em>!</d>"), dtd)
        dtd2 = parse_dtd("<!ELEMENT d (#PCDATA | em)*>"
                         "<!ELEMENT em (#PCDATA)><!ELEMENT b (#PCDATA)>")
        assert not is_valid(parse_element("<d><b>no</b></d>"), dtd2)

    def test_empty_model_rejects_content(self):
        dtd = parse_dtd("<!ELEMENT x EMPTY>")
        assert is_valid(parse_element("<x/>"), dtd)
        assert not is_valid(parse_element("<x>text</x>"), dtd)

    def test_any_model_accepts_everything(self):
        dtd = parse_dtd("<!ELEMENT x ANY><!ELEMENT y (#PCDATA)>")
        assert is_valid(parse_element("<x>text<y>more</y></x>"), dtd)

    def test_pcdata_rejects_children(self):
        dtd = parse_dtd("<!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>")
        assert not is_valid(parse_element("<x><y>z</y></x>"), dtd)

    def test_ambiguous_model_handled(self):
        # (a?, a) requires one or two a's — nondeterministic matching.
        dtd = parse_dtd("<!ELEMENT x (a?, a)><!ELEMENT a EMPTY>")
        assert is_valid(parse_element("<x><a/></x>"), dtd)
        assert is_valid(parse_element("<x><a/><a/></x>"), dtd)
        assert not is_valid(parse_element("<x/>"), dtd)
        assert not is_valid(parse_element("<x><a/><a/><a/></x>"), dtd)


class TestAttributes:
    def test_required_attribute(self):
        dtd = parse_dtd('<!ELEMENT x EMPTY>'
                        '<!ATTLIST x id CDATA #REQUIRED>')
        assert is_valid(parse_element('<x id="1"/>'), dtd)
        assert not is_valid(parse_element("<x/>"), dtd)

    def test_enumerated_attribute(self):
        dtd = parse_dtd('<!ELEMENT x EMPTY>'
                        '<!ATTLIST x s (open|sold) "open">')
        assert is_valid(parse_element('<x s="sold"/>'), dtd)
        assert not is_valid(parse_element('<x s="bogus"/>'), dtd)

    def test_implied_attribute_optional(self):
        dtd = parse_dtd('<!ELEMENT x EMPTY>'
                        '<!ATTLIST x note CDATA #IMPLIED>')
        assert is_valid(parse_element("<x/>"), dtd)
