"""Tests for error-recovering XML ingestion (lenient/salvage modes)."""

import pytest

from repro.xmlio import parse_fragments, write_element
from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.recovery import (INGEST_MODES, RecoveryLog,
                                  read_fragments, split_fragments)

CLEAN = """
<listing><price>100000</price><city>Miami</city></listing>
<listing><price>250000</price><city>Boston</city></listing>
"""

#: Listing 1 never closes <price>; its siblings are well-formed.
UNBALANCED = """
<listing><price>100000</price><city>Miami</city></listing>
<listing><price>250000<city>Boston</city></listing>
<listing><price>300000</price><city>Austin</city></listing>
"""


def tags_of(roots):
    return [[child.tag for child in root.element_children] for root in roots]


class TestStrictMode:
    def test_clean_input_matches_plain_parse(self):
        strict, log = read_fragments(CLEAN, "strict")
        plain = parse_fragments(CLEAN)
        assert log.ok
        assert [write_element(r) for r in strict] == \
            [write_element(r) for r in plain]

    def test_malformed_input_raises(self):
        with pytest.raises(XMLSyntaxError):
            read_fragments(UNBALANCED, "strict")

    def test_error_carries_line_and_column(self):
        try:
            read_fragments("<a>\n  <b>text</c>\n</a>", "strict")
        except XMLSyntaxError as exc:
            assert exc.location.line == 2
            assert exc.location.column > 1
            assert "line 2" in str(exc)
        else:
            pytest.fail("malformed input did not raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown ingestion mode"):
            read_fragments(CLEAN, "paranoid")
        assert set(INGEST_MODES) == {"strict", "lenient", "salvage"}


class TestLenientMode:
    def test_clean_input_is_identical_to_strict(self):
        lenient, log = read_fragments(CLEAN, "lenient")
        strict = parse_fragments(CLEAN)
        assert log.ok
        assert [write_element(r) for r in lenient] == \
            [write_element(r) for r in strict]

    def test_auto_closes_unbalanced_tag(self):
        roots, log = read_fragments(UNBALANCED, "lenient")
        assert len(roots) == 3
        assert log.recovered == [1]
        assert log.clean == [0, 2]
        # The repaired listing keeps both children; <price> was closed
        # at the mismatched </listing>.
        assert tags_of(roots)[1] == ["price"]
        assert roots[1].element_children[0].element_children[0].tag == "city"
        assert any(event.kind == "auto-closed" for event in log.events)

    def test_undeclared_entity_kept_as_text(self):
        roots, log = read_fragments(
            "<a><b>Tom &amp; Jerry &copy; now</b></a>", "lenient")
        assert roots[0].element_children[0].text_content() == "Tom & Jerry &copy; now"
        assert any(event.kind == "skipped-entity"
                   for event in log.events)

    def test_stray_angle_bracket_becomes_character_data(self):
        roots, log = read_fragments(
            "<a><b>price < 100</b></a>", "lenient")
        assert roots[0].element_children[0].text_content() == "price < 100"
        assert any(event.kind == "stray-markup" for event in log.events)

    def test_unclosed_at_end_of_input(self):
        roots, log = read_fragments("<a><b>text", "lenient")
        assert len(roots) == 1
        assert roots[0].element_children[0].text_content() == "text"
        auto = [e for e in log.events if e.kind == "auto-closed"]
        assert len(auto) == 2  # <b> and <a>

    def test_event_locations_are_file_absolute(self):
        text = ("<listing><price>1</price></listing>\n"
                "<listing><price>2<city>X</city></listing>\n")
        _, log = read_fragments(text, "lenient")
        lines = {event.location.line for event in log.events
                 if event.kind == "auto-closed"}
        assert lines == {2}
        entry = next(event.as_dict() for event in log.events
                     if event.kind == "auto-closed")
        assert entry["line"] == 2 and entry["column"] > 1
        assert entry["listing"] == 1


class TestSalvageMode:
    def test_drops_malformed_keeps_siblings(self):
        roots, log = read_fragments(UNBALANCED, "salvage")
        assert len(roots) == 2
        assert log.dropped == [1]
        assert log.clean == [0, 2]
        assert [root.element_children[0].text_content() for root in roots] == \
            ["100000", "300000"]

    def test_all_malformed_records_no_elements(self):
        roots, log = read_fragments("<a><b></a>", "salvage")
        assert roots == []
        assert any(event.kind == "no-elements" for event in log.events)


class TestRecoveryLog:
    def test_as_dict_shape(self):
        _, log = read_fragments(UNBALANCED, "lenient")
        entry = log.as_dict()
        assert entry["listings"]["clean"] == 2
        assert entry["listings"]["recovered"] == [1]
        assert entry["listings"]["dropped"] == []
        assert entry["counts"]["recovered-listing"] == 1
        assert all({"kind", "message", "line", "column"}
                   <= set(event) for event in entry["events"])

    def test_empty_log_is_ok(self):
        log = RecoveryLog()
        assert log.ok
        assert log.counts() == {}


class TestSplitFragments:
    def test_isolates_siblings(self):
        fragments = split_fragments(UNBALANCED)
        assert len(fragments) == 3
        assert all(fragment.kind == "element"
                   for fragment in fragments)
        assert fragments[1].line == 3

    def test_comments_and_pis_skipped(self):
        fragments = split_fragments(
            "<!-- header --><?pi data?><a>1</a><!-- mid --><b>2</b>")
        assert [f.text for f in fragments] == ["<a>1</a>", "<b>2</b>"]

    def test_stray_content_is_its_own_fragment(self):
        fragments = split_fragments("junk <a>1</a>")
        assert [f.kind for f in fragments] == ["stray", "element"]
