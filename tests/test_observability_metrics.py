"""Tests for counters, gauges, histograms and the metrics registry."""

import pytest

from repro.observability import (NULL_METRICS, Counter, Gauge, Histogram,
                                 MetricsRegistry, exponential_buckets)
from repro.observability.metrics import CATALOGUE


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter("x"), Counter("x")
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7
        assert a.as_dict() == 7


class TestGauge:
    def test_set(self):
        gauge = Gauge("ratio")
        assert not gauge.is_set
        gauge.set(0.25)
        assert gauge.is_set and gauge.value == 0.25

    def test_merge_keeps_other_when_set(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(2.0)
        a.merge(b)
        assert a.value == 2.0

    def test_merge_ignores_unset_other(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        a.merge(b)
        assert a.value == 1.0


class TestBuckets:
    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_invalid_parameters(self):
        for args in ((0.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)):
            with pytest.raises(ValueError):
                exponential_buckets(*args)


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_single_value_is_exact_at_every_percentile(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        hist.observe(7.0, count=50)
        for q in (0, 25, 50, 90, 99, 100):
            assert hist.percentile(q) == 7.0

    def test_percentiles_at_bucket_edges(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 4.0):
            hist.observe(value)
        # target rank falls in the (1, 2] bucket, halfway through it.
        assert hist.percentile(50) == pytest.approx(1.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_interpolation_clamped_to_observed_range(self):
        hist = Histogram("h", bounds=(10.0,))
        hist.observe(3.0)
        hist.observe(4.0)
        # Both land in the first bucket; without clamping the lower
        # edge would be the histogram's min bound, not the observed 3.
        assert 3.0 <= hist.percentile(50) <= 4.0
        assert hist.percentile(99) <= 4.0

    def test_overflow_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(100.0)
        assert hist.counts[-1] == 1
        assert hist.percentile(99) == 100.0

    def test_observe_with_count(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5, count=10)
        assert hist.total == 10
        assert hist.sum == pytest.approx(5.0)
        assert hist.mean == pytest.approx(0.5)

    def test_observe_nonpositive_count_ignored(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5, count=0)
        assert hist.total == 0

    def test_empty_summary_is_zero(self):
        summary = Histogram("h", bounds=(1.0,)).summary()
        assert summary == {"count": 0, "sum": 0.0, "mean": 0.0,
                           "min": 0.0, "max": 0.0, "p50": 0.0,
                           "p90": 0.0, "p99": 0.0}

    def test_summary_keys_and_values(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        hist.observe(3.0)
        summary = hist.summary()
        assert summary["count"] == 2
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_as_dict_includes_buckets(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1.5)
        data = hist.as_dict()
        assert data["buckets"] == {"1.0": 0, "2.0": 1, "+inf": 0}

    def test_merge(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5, count=3)
        a.merge(b)
        assert a.total == 4
        assert a.min == 0.5 and a.max == 1.5
        assert a.counts == [1, 3, 0]

    def test_merge_rejects_different_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge_folds_all_instrument_kinds(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("c").inc(1)
        worker.counter("c").inc(2)
        worker.gauge("g").set(0.5)
        worker.histogram("h", bounds=(1.0,)).observe(0.25)
        main.merge(worker)
        assert main.counter("c").value == 3
        assert main.gauge("g").value == 0.5
        assert main.histogram("h", bounds=(1.0,)).total == 1

    def test_summary_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        summary = registry.summary()
        assert summary["counters"] == {"c": 1}
        assert summary["gauges"] == {"g": 2.0}
        assert summary["histograms"]["h"]["count"] == 1

    def test_catalogue_kinds(self):
        assert CATALOGUE
        for name, (kind, description) in CATALOGUE.items():
            assert kind in ("counter", "gauge", "histogram"), name
            assert description


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(0.5)
        assert NULL_METRICS.counter("c").value == 0
        assert NULL_METRICS.summary() == {
            "counters": {}, "gauges": {}, "histograms": {}}
