"""Tests for the §8 plug-in learners: Semint-style statistics and
DELTA-style metadata."""

import numpy as np
import pytest

from repro.learners import (MetadataLearner, StatisticsLearner,
                            metadata_document, statistics_vector)

from .helpers import make_instance, space_of, training_set

SPACE = space_of("PRICE", "DESCRIPTION", "ZIP", "AGENT-PHONE")

TRAINING = [
    (make_instance("p", "$250,000"), "PRICE"),
    (make_instance("p", "$110,000"), "PRICE"),
    (make_instance("p", "$87,500"), "PRICE"),
    (make_instance("d", "Fantastic house with a great location near "
                        "the river and wonderful schools"),
     "DESCRIPTION"),
    (make_instance("d", "Charming cottage, beautiful garden, close to "
                        "downtown shopping and parks"), "DESCRIPTION"),
    (make_instance("d", "Spacious rambler with hardwood floors and a "
                        "large fenced yard"), "DESCRIPTION"),
    (make_instance("z", "98105"), "ZIP"),
    (make_instance("z", "02139"), "ZIP"),
    (make_instance("z", "73301"), "ZIP"),
    (make_instance("t", "(206) 523 4719"), "AGENT-PHONE"),
    (make_instance("t", "(617) 253 1429"), "AGENT-PHONE"),
    (make_instance("t", "(512) 330 2255"), "AGENT-PHONE"),
]


class TestStatisticsVector:
    def test_shape_and_bounds(self):
        for text in ["", "abc", "$250,000", "(206) 523 4719",
                     "a long description with many words in it"]:
            vector = statistics_vector(text)
            assert vector.shape == (8,)
            assert np.all(vector >= 0.0) and np.all(vector <= 1.0 + 1e-9)

    def test_empty_is_zero(self):
        assert np.allclose(statistics_vector("   "), 0.0)

    def test_numeric_fields_flagged(self):
        assert statistics_vector("98105")[5] == 1.0
        assert statistics_vector("only words")[5] == 0.0

    def test_magnitude_orders_fields(self):
        # Prices live at higher magnitude than bath counts.
        assert statistics_vector("250000")[6] > \
            statistics_vector("2")[6]


class TestStatisticsLearner:
    def fitted(self):
        learner = StatisticsLearner()
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        return learner

    def test_separates_by_statistics(self):
        """The Semint signal: data types and scale, no vocabulary."""
        learner = self.fitted()
        [price] = learner.predict([make_instance("x", "$375,000")])
        assert price.top() == "PRICE"
        [zipcode] = learner.predict([make_instance("x", "60601")])
        assert zipcode.top() == "ZIP"
        [phone] = learner.predict([make_instance("x", "(303) 745 1120")])
        assert phone.top() == "AGENT-PHONE"
        [description] = learner.predict([make_instance(
            "x", "Lovely split-level home close to the lake with a "
                 "sunny kitchen")])
        assert description.top() == "DESCRIPTION"

    def test_unseen_label_gets_zero(self):
        learner = self.fitted()
        scores = learner.predict_scores([make_instance("x", "$1")])
        assert scores[0, SPACE.other_index] == 0.0

    def test_rows_are_distributions(self):
        learner = self.fitted()
        scores = learner.predict_scores(
            [make_instance("x", t) for t in ["$5", "words", ""]])
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_clone(self):
        assert StatisticsLearner(temperature=0.2).clone().temperature \
            == 0.2

    def test_registered(self):
        from repro.learners import registry
        assert "statistics" in registry and "metadata" in registry


class TestMetadataLearner:
    def test_document_combines_name_path_content(self):
        instance = make_instance("work-phone", "(206) 523 4719",
                                 path=("listing", "contact-info"))
        document = metadata_document(instance)
        assert "work" in document and "phone" in document
        assert "contact" in document and "info" in document
        assert "206" in document

    def test_name_or_content_alone_suffices(self):
        learner = MetadataLearner()
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        # Right name, useless content.
        [by_name] = learner.predict([make_instance("p", "n/a")])
        assert by_name.top() == "PRICE"
        # Useless name, right content.
        [by_content] = learner.predict(
            [make_instance("qq", "$425,000")])
        assert by_content.top() == "PRICE"

    def test_cap_per_label(self):
        learner = MetadataLearner(max_examples_per_label=1)
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        assert learner._index._label_matrix.shape[0] <= len(SPACE)

    def test_integrates_with_meta_learner(self):
        """The §8 claim: plugged-in learners combine via stacking."""
        from repro.learners import (NaiveBayesLearner, StackingMetaLearner,
                                    cross_validate)
        instances, labels = training_set(TRAINING)
        learners = [NaiveBayesLearner(), StatisticsLearner(),
                    MetadataLearner()]
        cv = {
            learner.name: cross_validate(learner, instances, labels,
                                         SPACE, seed=0)
            for learner in learners
        }
        meta = StackingMetaLearner()
        meta.fit(cv, labels, SPACE)
        for learner in learners:
            learner.fit(instances, labels, SPACE)
        combined = meta.combine({
            learner.name: learner.predict_scores(
                [make_instance("x", "$99,000")])
            for learner in learners
        })
        assert SPACE.label_at(int(np.argmax(combined[0]))) == "PRICE"
