"""Pipeline-level telemetry: exposition determinism across execution
backends, per-worker resource reporting on the process pool, and the
progress events a real match emits."""

import pytest

from repro.observability import (Observer, parse_openmetrics,
                                 render_openmetrics)
from repro.observability.events import EventStream, validate_file
from repro.observability.expo import samples_for
from repro.observability.metrics import (M_POOL_QUEUE_WAIT, M_POOL_TASKS,
                                         M_POOL_WORKER_CPU,
                                         M_POOL_WORKER_RSS,
                                         M_POOL_WORKERS)

from .test_core_system import (GREATHOMES_LISTINGS, GREATHOMES_SCHEMA,
                               trained_system)

#: Metric families whose values are a pure function of the input —
#: identical at any worker count and on every backend. Timing
#: histograms, cache hit/miss counters (racy across workers), and the
#: pool.*/proc.* resource families are deliberately absent.
DETERMINISTIC = ("match.instances", "match.tags", "match.column_size",
                 "predict.structure_passes")


@pytest.fixture(scope="module")
def system():
    return trained_system()


def _exposition(system, workers: int, backend: str) -> str:
    system.workers = workers
    system.backend = backend
    observer = Observer.full()
    try:
        system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                     observer=observer)
    finally:
        system.close_pool()
        system.workers, system.backend = 1, "thread"
    full = render_openmetrics(observer.metrics,
                              labels={"command": "match"})
    deterministic = {
        line for line in full.splitlines()
        for name in DETERMINISTIC
        if f"lsd_{name.replace('.', '_')}" in line}
    return full, "\n".join(sorted(deterministic))


class TestExpositionDeterminism:
    def test_byte_identical_across_worker_counts_and_backends(self,
                                                              system):
        full_serial, baseline = _exposition(system, 1, "serial")
        for workers, backend in ((4, "thread"), (4, "serial"),
                                 (2, "process")):
            _, lines = _exposition(system, workers, backend)
            assert lines == baseline, (workers, backend)
        assert baseline  # the filter actually selected families
        parse_openmetrics(full_serial)  # and the full text stays valid


class TestProcessPoolResources:
    def test_match_reports_per_worker_rss_cpu_and_queue_wait(self,
                                                             system):
        system.workers = 2
        system.backend = "process"
        observer = Observer.full()
        try:
            system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                         observer=observer)
        finally:
            system.close_pool()
            system.workers, system.backend = 1, "thread"
        summary = observer.metrics.summary()
        rss = summary["histograms"][M_POOL_WORKER_RSS]
        cpu = summary["histograms"][M_POOL_WORKER_CPU]
        assert 1 <= rss["count"] <= 2  # one sample per worker that ran
        assert rss["min"] > 0  # a live worker has a nonzero RSS
        assert cpu["count"] == rss["count"]
        assert summary["gauges"][M_POOL_WORKERS] >= 1.0
        wait = summary["histograms"][M_POOL_QUEUE_WAIT]
        tasks = summary["counters"][M_POOL_TASKS]
        assert tasks >= 1
        assert wait["count"] == tasks  # every dispatch measured a wait

    def test_thread_backend_measures_queue_wait_too(self, system):
        system.workers = 4
        observer = Observer.full()
        try:
            system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                         observer=observer)
        finally:
            system.workers = 1
        summary = observer.metrics.summary()
        assert summary["histograms"][M_POOL_QUEUE_WAIT]["count"] >= 1

    def test_serial_run_has_no_pool_families(self, system):
        observer = Observer.full()
        system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                     observer=observer)
        summary = observer.metrics.summary()
        assert M_POOL_WORKER_RSS not in summary["histograms"]
        assert M_POOL_WORKERS not in summary["gauges"]


class TestMatchEvents:
    def test_match_emits_a_valid_stage_narrative(self, system, tmp_path):
        path = tmp_path / "events.jsonl"
        events = EventStream(path)
        observer = Observer.full(events=events)
        system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                     observer=observer)
        events.close()
        assert validate_file(path) == []
        kinds = [event["kind"] for event in events.events]
        for stage in ("extract", "predict", "constrain"):
            starts = [e for e in events.events
                      if e["kind"] == "stage_start"
                      and e.get("stage") == stage]
            ends = [e for e in events.events
                    if e["kind"] == "stage_end" and e.get("stage") == stage]
            assert len(starts) == 1 and len(ends) == 1, stage
        assert kinds.index("stage_start") < kinds.index("shard_complete")

    def test_shard_heartbeats_cover_the_task_grid(self, system, tmp_path):
        system.workers = 4
        events = EventStream(tmp_path / "events.jsonl")
        observer = Observer.full(events=events)
        try:
            system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                         observer=observer)
        finally:
            system.workers = 1
        events.close()
        shards = [e for e in events.events
                  if e["kind"] == "shard_complete"]
        assert shards
        grid_size = shards[0]["shards"]
        assert [s["index"] for s in shards[:grid_size]] == \
            list(range(grid_size))
        assert all(s["rows"] >= 1 for s in shards)

    def test_shard_heartbeats_identical_across_worker_counts(
            self, system, tmp_path):
        def heartbeat_set(workers):
            system.workers = workers
            events = EventStream(tmp_path / f"w{workers}.jsonl")
            try:
                system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                             observer=Observer.full(events=events))
            finally:
                system.workers = 1
            events.close()
            return [{k: e[k] for k in ("label", "index", "shards",
                                       "rows", "stage")}
                    for e in events.events
                    if e["kind"] == "shard_complete"]

        assert heartbeat_set(1) == heartbeat_set(4)
