"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.xmlio import (Element, Text, XMLSyntaxError, parse_document,
                         parse_element, parse_fragments)


class TestBasicParsing:
    def test_single_empty_element(self):
        doc = parse_document("<root/>")
        assert doc.root.tag == "root"
        assert doc.root.children == []

    def test_element_with_text(self):
        root = parse_element("<price>$70,000</price>")
        assert root.tag == "price"
        assert root.immediate_text() == "$70,000"

    def test_nested_elements(self):
        root = parse_element(
            "<house-listing><location>Seattle, WA</location>"
            "<price>$70,000</price></house-listing>")
        assert [c.tag for c in root.element_children] == ["location", "price"]
        assert root.find("location").immediate_text() == "Seattle, WA"

    def test_deeply_nested(self):
        root = parse_element("<a><b><c><d>x</d></c></b></a>")
        assert root.depth() == 4
        assert root.find("b").find("c").find("d").immediate_text() == "x"

    def test_paper_figure3_listing(self):
        text = """
        <house-listing>
          <location>Seattle, WA</location>
          <price> $70,000</price>
          <contact><name>Kate Richardson</name>
            <phone>(206) 523 4719</phone>
          </contact>
        </house-listing>
        """
        root = parse_element(text)
        assert root.tag == "house-listing"
        contact = root.find("contact")
        assert contact.find("phone").immediate_text() == "(206) 523 4719"
        assert "Kate Richardson" in root.text_content()

    def test_attributes(self):
        root = parse_element('<listing id="42" status="for sale"/>')
        assert root.attributes == {"id": "42", "status": "for sale"}

    def test_single_quoted_attributes(self):
        root = parse_element("<a x='1'/>")
        assert root.attributes["x"] == "1"

    def test_whitespace_between_elements_dropped(self):
        root = parse_element("<a>\n  <b>x</b>\n  <c>y</c>\n</a>")
        assert all(isinstance(c, Element) for c in root.children)

    def test_keep_whitespace_mode(self):
        root = parse_element("<a> <b>x</b> </a>", keep_whitespace=True)
        assert any(isinstance(c, Text) for c in root.children)

    def test_mixed_content_preserved(self):
        root = parse_element("<d>Call <b>now</b> please</d>")
        kinds = [type(c).__name__ for c in root.children]
        assert kinds == ["Text", "Element", "Text"]
        assert root.text_content() == "Call now please"


class TestEntitiesAndSpecials:
    def test_predefined_entities(self):
        root = parse_element("<t>a &lt; b &amp;&amp; c &gt; d</t>")
        assert root.immediate_text() == "a < b && c > d"

    def test_numeric_entities(self):
        root = parse_element("<t>&#65;&#x42;</t>")
        assert root.immediate_text() == "AB"

    def test_entity_in_attribute(self):
        root = parse_element('<t name="a&amp;b"/>')
        assert root.attributes["name"] == "a&b"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_element("<t>&nosuch;</t>")

    def test_cdata_section(self):
        root = parse_element("<t><![CDATA[<not> & parsed]]></t>")
        assert root.immediate_text() == "<not> & parsed"

    def test_comments_skipped(self):
        root = parse_element("<a><!-- hidden --><b>x</b></a>")
        assert [c.tag for c in root.element_children] == ["b"]

    def test_processing_instruction_skipped(self):
        root = parse_element("<a><?php echo ?><b>x</b></a>")
        assert [c.tag for c in root.element_children] == ["b"]


class TestProlog:
    def test_xml_declaration(self):
        doc = parse_document('<?xml version="1.1" encoding="utf-8"?><r/>')
        assert doc.version == "1.1"
        assert doc.encoding == "utf-8"

    def test_doctype_name(self):
        doc = parse_document("<!DOCTYPE listing><listing/>")
        assert doc.doctype_name == "listing"

    def test_doctype_internal_subset_captured(self):
        doc = parse_document(
            "<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r>x</r>")
        assert "<!ELEMENT r" in doc.internal_subset

    def test_doctype_system_identifier(self):
        doc = parse_document('<!DOCTYPE r SYSTEM "r.dtd"><r/>')
        assert doc.doctype_name == "r"

    def test_leading_comment(self):
        doc = parse_document("<!-- hello --><r/>")
        assert doc.root.tag == "r"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "<a>",                      # unterminated
        "<a></b>",                  # mismatched end tag
        "<a><b></a></b>",           # crossed nesting
        "text only",                # no element
        "<a/><b/>",                 # two roots in document mode
        "<a x=1/>",                 # unquoted attribute
        '<a x="1" x="2"/>',         # duplicate attribute
        "<a><!-- -- --></a>",       # double hyphen in comment
        "<1a/>",                    # bad name start
        "< a/>",                    # space after <
    ])
    def test_malformed_documents_raise(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_document(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_document("<a>\n<b></c>\n</a>")
        assert excinfo.value.line == 2


class TestFragments:
    def test_multiple_top_level_elements(self):
        roots = parse_fragments("<l>one</l><l>two</l><l>three</l>")
        assert [r.immediate_text() for r in roots] == ["one", "two", "three"]

    def test_fragments_with_prolog(self):
        roots = parse_fragments('<?xml version="1.0"?><a/><b/>')
        assert [r.tag for r in roots] == ["a", "b"]

    def test_empty_input_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_fragments("   ")


class TestTreeModel:
    def test_path(self):
        root = parse_element("<a><b><c>x</c></b></a>")
        leaf = root.find("b").find("c")
        assert leaf.path() == "a/b/c"

    def test_iter_by_tag(self):
        root = parse_element("<a><b>1</b><c><b>2</b></c></a>")
        assert [b.immediate_text() for b in root.iter("b")] == ["1", "2"]

    def test_findall(self):
        root = parse_element("<a><b>1</b><b>2</b><c/></a>")
        assert len(root.findall("b")) == 2

    def test_text_content_includes_attributes(self):
        root = parse_element('<a note="attr text"><b>body</b></a>')
        content = root.text_content()
        assert "attr text" in content and "body" in content

    def test_copy_is_deep(self):
        root = parse_element("<a><b>x</b></a>")
        clone = root.copy()
        clone.find("b").children[0].value = "changed"
        assert root.find("b").immediate_text() == "x"

    def test_ancestors(self):
        root = parse_element("<a><b><c/></b></a>")
        c = root.find("b").find("c")
        assert [n.tag for n in c.ancestors()] == ["b", "a"]

    def test_parent_pointers(self):
        root = parse_element("<a><b/></a>")
        assert root.find("b").parent is root
