"""Tests for run reports: building, round-trip, schema validation."""

from types import SimpleNamespace

import pytest

from repro.observability import (Observer, QualityRecord, StageProfile,
                                 build_match_report, dataset_fingerprint,
                                 load_report, load_schema, render_text,
                                 validate_file, validate_report,
                                 write_report)
from repro.observability.metrics import M_PREDICT_LATENCY


def _record(tag: str = "price", assigned: str = "PRICE",
            override: bool = False) -> QualityRecord:
    return QualityRecord(
        tag=tag, column_size=20,
        learner_top={"naive_bayes": {"label": "PRICE", "score": 0.9}},
        meta_weights={"naive_bayes": 0.5},
        predicted="PRICE", predicted_score=0.9, margin=0.6,
        agreement=1.0, assigned=assigned,
        constraint_override=override)


def _result(records=None) -> SimpleNamespace:
    profile = StageProfile()
    profile.add_time("extract", 0.25)
    profile.add_time("predict.learner.naive_bayes", 0.5)
    profile.count("instances", 40)
    return SimpleNamespace(
        profile=profile,
        quality=list(records if records is not None else [_record()]),
        mapping={"price": "PRICE", "agent": "OTHER"})


def _observer() -> Observer:
    observer = Observer.full()
    observer.metrics.counter("match.instances").inc(40)
    observer.metrics.histogram(M_PREDICT_LATENCY).observe(1e-4,
                                                          count=40)
    return observer


def _report(**overrides) -> dict:
    kwargs = dict(
        config={"model": "m.lsd", "workers": 2},
        dataset={"fingerprint": "abc123", "tags": 2, "instances": 40},
        result=_result(), observer=_observer(), created=1700000000.0)
    kwargs.update(overrides)
    return build_match_report(**kwargs)


class TestFingerprint:
    def test_stable_and_tag_order_insensitive(self):
        a = dataset_fingerprint(["b", "a"], ["x", "y"])
        b = dataset_fingerprint(["a", "b"], ["x", "y"])
        assert a == b
        assert len(a) == 16

    def test_sensitive_to_content(self):
        base = dataset_fingerprint(["a"], ["x"])
        assert dataset_fingerprint(["a"], ["y"]) != base
        assert dataset_fingerprint(["b"], ["x"]) != base
        assert dataset_fingerprint(["a"], ["x", ""]) != base


class TestBuildReport:
    def test_sections(self):
        report = _report()
        assert report["command"] == "match"
        assert report["created"] == 1700000000.0
        assert report["config"]["workers"] == 2
        assert report["stages"]["counters"]["instances"] == 40
        assert report["metrics"]["counters"]["match.instances"] == 40
        assert report["mapping"] == {"agent": "OTHER",
                                     "price": "PRICE"}
        assert report["quality"][0]["tag"] == "price"

    def test_disabled_observer_yields_empty_metrics(self):
        report = _report(observer=None)
        assert report["metrics"] == {"counters": {}, "gauges": {},
                                     "histograms": {}}

    def test_round_trip(self, tmp_path):
        report = _report()
        path = tmp_path / "report.json"
        write_report(report, path)
        assert load_report(path) == report

    def test_quality_record_round_trip(self):
        record = _record(override=True)
        assert QualityRecord.from_dict(record.as_dict()) == record


class TestSchemaValidation:
    def test_built_report_is_valid(self):
        assert validate_report(_report()) == []

    def test_schema_file_loads(self):
        schema = load_schema()
        assert schema["type"] == "object"
        assert "quality" in schema["properties"]

    def test_missing_required_key(self):
        report = _report()
        del report["mapping"]
        errors = validate_report(report)
        assert any("mapping" in error for error in errors)

    def test_wrong_type(self):
        report = _report()
        report["dataset"]["tags"] = "two"
        errors = validate_report(report)
        assert any("expected integer" in error for error in errors)

    def test_unexpected_top_level_key(self):
        report = _report()
        report["extra"] = 1
        errors = validate_report(report)
        assert any("extra" in error for error in errors)

    def test_bad_enum(self):
        report = _report()
        report["kind"] = "something-else"
        assert validate_report(report)

    def test_negative_minimum(self):
        report = _report()
        report["created"] = -5.0
        assert any("minimum" in error
                   for error in validate_report(report))

    def test_bool_is_not_an_integer(self):
        report = _report()
        report["dataset"]["tags"] = True
        assert validate_report(report)

    def test_validate_file(self, tmp_path):
        path = tmp_path / "report.json"
        write_report(_report(), path)
        assert validate_file(path)["kind"] == "lsd-run-report"

    def test_validate_file_raises_with_violations(self, tmp_path):
        report = _report()
        del report["quality"]
        path = tmp_path / "bad.json"
        write_report(report, path)
        with pytest.raises(ValueError, match="quality"):
            validate_file(path)


class TestRenderText:
    def test_mentions_mapping_and_metrics(self):
        text = render_text(_report())
        assert "price" in text and "PRICE" in text
        assert "p50" in text and "p99" in text
        assert "extract" in text

    def test_override_flag(self):
        result = _result([_record(assigned="OTHER", override=True)])
        text = render_text(_report(result=result))
        assert "OVERRIDE" in text

    def test_tag_without_quality_record_still_listed(self):
        text = render_text(_report())
        assert "agent" in text
