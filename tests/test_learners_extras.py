"""Tests for recognizers, the numeric learner, and the format learner."""

import numpy as np
import pytest

from repro.learners import (FormatLearner, GazetteerRecognizer,
                            NumericLearner, RegexRecognizer, registry,
                            value_shape)

from .helpers import make_instance, space_of, training_set

SPACE = space_of("COUNTY", "PRICE", "BATHS", "AGENT-PHONE", "COURSE-CODE")


class TestGazetteerRecognizer:
    def fitted(self):
        learner = GazetteerRecognizer(
            "COUNTY", ["King", "Pierce", "Miami-Dade"])
        learner.fit([], [], SPACE)
        return learner

    def test_recognized_value(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "King")])
        assert p.top() == "COUNTY"
        assert p.score("COUNTY") >= 0.9

    def test_case_insensitive(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "  miami-dade ")])
        assert p.top() == "COUNTY"

    def test_unrecognized_abstains(self):
        learner = self.fitted()
        scores = learner.predict_scores([make_instance("x", "Seattle")])
        assert np.allclose(scores[0], 1.0 / len(SPACE))

    def test_label_not_in_space_abstains(self):
        learner = GazetteerRecognizer("NOSUCH", ["King"])
        learner.fit([], [], SPACE)
        scores = learner.predict_scores([make_instance("x", "King")])
        assert np.allclose(scores[0], 1.0 / len(SPACE))

    def test_default_name(self):
        assert GazetteerRecognizer("COUNTY", []).name == \
            "gazetteer[county]"


class TestRegexRecognizer:
    def test_phone_pattern(self):
        learner = RegexRecognizer(
            "AGENT-PHONE", r"\(\d{3}\) \d{3} \d{4}")
        learner.fit([], [], SPACE)
        [hit] = learner.predict([make_instance("x", "(206) 523 4719")])
        assert hit.top() == "AGENT-PHONE"
        scores = learner.predict_scores([make_instance("x", "no phone")])
        assert np.allclose(scores[0], 1.0 / len(SPACE))

    def test_partial_match_does_not_count(self):
        learner = RegexRecognizer("AGENT-PHONE", r"\d{3}")
        learner.fit([], [], SPACE)
        scores = learner.predict_scores([make_instance("x", "12345")])
        assert np.allclose(scores[0], 1.0 / len(SPACE))


NUMERIC_TRAINING = [
    (make_instance("p", "$ 250,000"), "PRICE"),
    (make_instance("p", "$ 180,000"), "PRICE"),
    (make_instance("p", "$ 320,000"), "PRICE"),
    (make_instance("b", "2"), "BATHS"),
    (make_instance("b", "3"), "BATHS"),
    (make_instance("b", "2.5"), "BATHS"),
    (make_instance("c", "Victorian charm"), "COUNTY"),
    (make_instance("c", "King"), "COUNTY"),
]


class TestNumericLearner:
    def fitted(self):
        learner = NumericLearner()
        instances, labels = training_set(NUMERIC_TRAINING)
        learner.fit(instances, labels, SPACE)
        return learner

    def test_magnitude_separates_price_from_baths(self):
        """The paper's motivating example: thousands => price, not baths."""
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "195,000")])
        assert p.top() == "PRICE"

    def test_small_count_is_baths(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "2")])
        assert p.top() == "BATHS"

    def test_non_numeric_prefers_non_numeric_label(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "lovely text")])
        assert p.score("COUNTY") > p.score("PRICE")

    def test_rows_are_distributions(self):
        learner = self.fitted()
        scores = learner.predict_scores(
            [make_instance("x", t) for t in ["5", "900000", "words", ""]])
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_clone(self):
        assert NumericLearner(smoothing=2.0).clone().smoothing == 2.0


class TestValueShape:
    @pytest.mark.parametrize("text,shape", [
        ("(206) 523 4719", "(999) 999 9999"),
        ("CSE142", "aaa999"),
        ("$70,000", "$99,999"),
        ("", ""),
    ])
    def test_shapes(self, text, shape):
        assert value_shape(text) == shape

    def test_long_runs_collapse(self):
        assert value_shape("aaaaaaaaaa") == "aaaa"
        assert value_shape("123456789") == "9999"


class TestFormatLearner:
    FORMAT_TRAINING = [
        (make_instance("ph", "(206) 523 4719"), "AGENT-PHONE"),
        (make_instance("ph", "(305) 729 0831"), "AGENT-PHONE"),
        (make_instance("ph", "(617) 253 1429"), "AGENT-PHONE"),
        (make_instance("cc", "CSE142"), "COURSE-CODE"),
        (make_instance("cc", "MATH300"), "COURSE-CODE"),
        (make_instance("cc", "BIO101"), "COURSE-CODE"),
        (make_instance("pr", "$250,000"), "PRICE"),
        (make_instance("pr", "$70,000"), "PRICE"),
    ]

    def fitted(self):
        learner = FormatLearner()
        instances, labels = training_set(self.FORMAT_TRAINING)
        learner.fit(instances, labels, SPACE)
        return learner

    def test_unseen_phone_number(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "(999) 000 1234")])
        assert p.top() == "AGENT-PHONE"

    def test_unseen_course_code(self):
        """§7: 'a format learner would presumably match course codes'."""
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "PHYS121")])
        assert p.top() == "COURSE-CODE"

    def test_unseen_price(self):
        learner = self.fitted()
        [p] = learner.predict([make_instance("x", "$1,250,000")])
        assert p.top() == "PRICE"


class TestRegistry:
    def test_default_learners_registered(self):
        for name in ["name_matcher", "content_matcher", "naive_bayes",
                     "xml_learner", "format", "numeric"]:
            assert name in registry

    def test_create_returns_fresh_instance(self):
        a = registry.create("naive_bayes")
        b = registry.create("naive_bayes")
        assert a is not b

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            registry.create("definitely-not-a-learner")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            registry.register("naive_bayes", lambda: None)
