"""Tests for the synthetic domains: Table 3 characteristics, validity of
generated listings against source DTDs, determinism, and coherence."""

import pytest

from repro.datasets import DOMAIN_NAMES, load_all_domains, load_domain
from repro.xmlio import validate

# Table 3 of the paper: (mediated tags, mediated non-leaf, mediated depth,
# source tag range, source listing range, min matchable fraction).
TABLE3 = {
    "real_estate_1": (20, 4, 3, (19, 21), (502, 3002), 0.84),
    # The paper reports 95-100% matchable; with <=19 tags per source one
    # unmatchable tag floors just below 94%, so we test >=0.93.
    "time_schedule": (23, 6, 4, (15, 19), (704, 3925), 0.93),
    "faculty": (14, 4, 3, (13, 14), (32, 73), 1.0),
    "real_estate_2": (66, 13, 4, (33, 48), (502, 3002), 1.0),
}


@pytest.fixture(scope="module", params=DOMAIN_NAMES)
def domain(request):
    return load_domain(request.param, seed=0)


class TestTable3Characteristics:
    def test_mediated_tag_count(self, domain):
        expected = TABLE3[domain.name][0]
        assert len(domain.mediated_schema.dtd.tag_names()) == expected

    def test_mediated_non_leaf_count(self, domain):
        expected = TABLE3[domain.name][1]
        assert len(domain.mediated_schema.dtd.non_leaf_names()) == expected

    def test_mediated_depth(self, domain):
        expected = TABLE3[domain.name][2]
        assert domain.mediated_schema.depth() == expected

    def test_five_sources(self, domain):
        assert len(domain.sources) == 5

    def test_source_tag_counts(self, domain):
        low, high = TABLE3[domain.name][3]
        for source in domain.sources:
            count = len(source.schema.dtd.tag_names())
            assert low <= count <= high, \
                f"{source.name}: {count} tags not in [{low}, {high}]"

    def test_source_listing_counts(self, domain):
        low, high = TABLE3[domain.name][4]
        for source in domain.sources:
            assert low <= source.n_listings <= high

    def test_matchable_fraction(self, domain):
        minimum = TABLE3[domain.name][5]
        for source in domain.sources:
            fraction = domain.matchable_fraction(source)
            assert fraction >= minimum, \
                f"{source.name}: only {fraction:.0%} matchable"

    def test_source_depth_at_most_mediated(self, domain):
        for source in domain.sources:
            assert source.schema.depth() <= \
                domain.mediated_schema.depth() + 1


class TestGeneratedListings:
    def test_listings_validate_against_source_dtd(self, domain):
        for source in domain.sources:
            for listing in source.listings(20):
                validate(listing, source.schema.dtd)

    def test_leaf_values_nonempty(self, domain):
        source = domain.sources[0]
        for listing in source.listings(10):
            for element in listing.iter():
                if element.is_leaf and element is not listing:
                    assert element.text_content(), \
                        f"{source.name}/{element.tag} produced empty text"

    def test_deterministic_generation(self, domain):
        from repro.xmlio import write_element
        source = domain.sources[0]
        first = [write_element(l) for l in source.listings(5, sample_seed=3)]
        second = [write_element(l)
                  for l in source.listings(5, sample_seed=3)]
        assert first == second

    def test_different_samples_differ(self, domain):
        from repro.xmlio import write_element
        source = domain.sources[0]
        a = [write_element(l) for l in source.listings(5, sample_seed=0)]
        b = [write_element(l) for l in source.listings(5, sample_seed=1)]
        assert a != b

    def test_count_clamped_to_source_size(self, domain):
        source = min(domain.sources, key=lambda s: s.n_listings)
        listings = source.listings(10 ** 6)
        assert len(listings) == source.n_listings

    def test_mapping_covers_all_tags(self, domain):
        for source in domain.sources:
            for tag in source.schema.tags:
                assert source.mapping.get(tag) is not None, \
                    f"{source.name}: tag {tag!r} unmapped"

    def test_mapped_labels_exist_in_mediated(self, domain):
        space = domain.mediated_schema.label_space()
        for source in domain.sources:
            for __, label in source.mapping.items():
                assert label in space


class TestDomainHeterogeneity:
    def test_sources_use_distinct_tag_vocabularies(self, domain):
        """No two sources should be trivially identical: at most half the
        tags may be shared between any pair."""
        for i, a in enumerate(domain.sources):
            for b in domain.sources[i + 1:]:
                shared = set(a.schema.tags) & set(b.schema.tags)
                limit = min(len(a.schema.tags), len(b.schema.tags)) * 0.6
                assert len(shared) <= limit, \
                    f"{a.name} and {b.name} share {len(shared)} tags"

    def test_every_label_covered_by_several_sources(self, domain):
        """Most mediated labels must appear in >= 2 sources, else no
        train/test split can learn them."""
        space = domain.mediated_schema.label_space()
        coverage = {label: 0 for label in space.real_labels()}
        for source in domain.sources:
            # Distinct labels bump independent counters: order-free.
            for label in {l for __, l  # lsd: ignore[set-iteration]
                          in source.mapping.items()}:
                if label in coverage:
                    coverage[label] += 1
        rare = [l for l, count in coverage.items() if count < 2]
        assert len(rare) <= len(coverage) * 0.15, \
            f"labels covered by <2 sources: {rare}"

    def test_constraints_parse_and_exist(self, domain):
        assert len(domain.constraints) >= 5

    def test_recognizers_constructible(self, domain):
        recognizers = domain.recognizers()
        for recognizer in recognizers:
            assert recognizer.name

    def test_synonyms_present(self, domain):
        assert domain.synonyms is not None and len(domain.synonyms) > 0


class TestRegistry:
    def test_load_all(self):
        domains = load_all_domains(seed=0)
        assert [d.name for d in domains] == list(DOMAIN_NAMES)

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            load_domain("bogus")

    def test_source_named(self):
        domain = load_domain("real_estate_1")
        assert domain.source_named("homeseekers.com").name == \
            "homeseekers.com"
        with pytest.raises(KeyError):
            domain.source_named("nope.com")


class TestDataCoherence:
    def test_firm_address_fd_holds(self):
        """CITY & OFFICE-NAME functionally determine OFFICE-ADDRESS in
        generated data (the Table 1 column-constraint example)."""
        domain = load_domain("real_estate_2")
        source = domain.source_named("windermere.com")
        seen = {}
        for listing in source.listings(100):
            contact = listing.find("listing-agent")
            office = contact.find("office")
            key = (listing.find("where").find("city").text_content(),
                   office.find("office-name").text_content())
            address = office.find("office-address").text_content()
            assert seen.setdefault(key, address) == address

    def test_mls_ids_unique(self):
        domain = load_domain("real_estate_2")
        source = domain.source_named("windermere.com")
        ids = [l.find("overview").find("mls-number").text_content()
               for l in source.listings(200)]
        assert len(set(ids)) == len(ids)

    def test_sln_unique(self):
        domain = load_domain("time_schedule")
        source = domain.source_named("uw.edu")
        ids = [l.find("sln").text_content() for l in source.listings(200)]
        assert len(set(ids)) == len(ids)

    def test_county_recognizer_matches_generated_counties(self):
        domain = load_domain("real_estate_1")
        recognizer = next(r for r in domain.recognizers()
                          if r.name == "county_recognizer")
        source = domain.source_named("homeseekers.com")
        values = {l.find("county-name").text_content()
                  for l in source.listings(30)}
        assert all(v.lower() in recognizer.values
                   or v.lower().replace(" county", "") in recognizer.values
                   for v in values)
