"""Reference-vector and property tests for the Porter stemmer."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.text import stem, stem_tokens

# Classic reference pairs from Porter's paper and the standard test vocab.
REFERENCE = {
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    "happy": "happi",
    "sky": "sky",
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "conformabli": "conform",
    "radicalli": "radic",
    "differentli": "differ",
    "vileli": "vile",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "homologou": "homolog",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
}


class TestReferenceVectors:
    def test_reference_pairs(self):
        failures = {
            word: (stem(word), expected)
            for word, expected in REFERENCE.items()
            if stem(word) != expected
        }
        assert not failures, f"stemmer disagrees on: {failures}"

    def test_domain_words_collapse(self):
        # Words that must share stems for the learners to generalize.
        assert stem("baths") == stem("bath")
        assert stem("listings") == stem("listing")
        assert stem("houses") == stem("house")
        assert stem("bedrooms") == stem("bedroom")

    def test_short_words_untouched(self):
        assert stem("at") == "at"
        assert stem("be") == "be"
        assert stem("a") == "a"

    def test_non_alpha_untouched(self):
        assert stem("70000") == "70000"
        assert stem("$") == "$"
        assert stem("cse142") == "cse142"


class TestProperties:
    @given(st.text(alphabet=string.ascii_lowercase, min_size=1,
                   max_size=20))
    def test_stem_never_longer(self, word):
        assert len(stem(word)) <= len(word)

    @given(st.text(alphabet=string.ascii_lowercase, min_size=1,
                   max_size=20))
    def test_stem_is_idempotent_enough(self, word):
        # Stemming an already short stem must never error and must stay
        # non-empty for non-empty input.
        assert stem(word)

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1,
                            max_size=12), max_size=10))
    def test_stem_tokens_preserves_length(self, tokens):
        assert len(stem_tokens(tokens)) == len(tokens)
