"""Round-trip and serialization tests for the XML/DTD writers.

Includes hypothesis property tests: any tree we can build out of legal
names and text must survive ``parse(write(tree))`` unchanged, and any DTD
must survive ``parse_dtd(write_dtd(dtd))``.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlio import (Element, Text, parse_document, parse_dtd,
                         parse_element, write_content_model, write_document,
                         write_dtd, write_element)

# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

tag_names = st.text(alphabet=string.ascii_lowercase + "-",
                    min_size=1, max_size=8).filter(
    lambda s: s[0].isalpha() and s[-1] != "-")

# Text without leading/trailing whitespace ambiguity: parse() with
# keep_whitespace=False strips whitespace-only runs, so generate text that
# always contains a non-space character and no surrounding spaces.
text_values = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>'\"$,.()-",
    min_size=1, max_size=30).map(str.strip).filter(bool)

attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " &<>'$,.",
    max_size=20)


@st.composite
def elements(draw, max_depth=3):
    tag = draw(tag_names)
    attributes = draw(st.dictionaries(tag_names, attr_values, max_size=3))
    node = Element(tag, attributes)
    if max_depth <= 0:
        body = draw(st.one_of(st.none(), text_values))
        if body is not None:
            node.append_text(body)
        return node
    kind = draw(st.integers(0, 2))
    if kind == 0:
        node.append_text(draw(text_values))
    elif kind == 1:
        for child in draw(st.lists(elements(max_depth=max_depth - 1),
                                   max_size=3)):
            node.append(child)
    return node


def trees_equal(a: Element, b: Element) -> bool:
    if a.tag != b.tag or a.attributes != b.attributes:
        return False
    if len(a.children) != len(b.children):
        return False
    for ca, cb in zip(a.children, b.children):
        if isinstance(ca, Text) != isinstance(cb, Text):
            return False
        if isinstance(ca, Text):
            if ca.value != cb.value:
                return False
        elif not trees_equal(ca, cb):
            return False
    return True


class TestElementRoundTrip:
    @given(elements())
    @settings(max_examples=150, deadline=None)
    def test_compact_roundtrip(self, tree):
        text = write_element(tree)
        parsed = parse_element(text, keep_whitespace=True)
        assert trees_equal(tree, parsed)

    def test_escaping(self):
        node = Element("t")
        node.append_text("a < b & c > d")
        out = write_element(node)
        assert "&lt;" in out and "&amp;" in out
        assert parse_element(out).immediate_text() == "a < b & c > d"

    def test_attribute_escaping(self):
        node = Element("t", {"q": 'say "hi" & <bye>'})
        out = write_element(node)
        assert parse_element(out).attributes["q"] == 'say "hi" & <bye>'

    def test_empty_element_self_closes(self):
        assert write_element(Element("x")) == "<x/>"

    def test_pretty_print(self):
        root = parse_element("<a><b>x</b><c><d>y</d></c></a>")
        out = write_element(root, indent=2)
        lines = out.splitlines()
        assert lines[0] == "<a>"
        assert lines[1] == "  <b>x</b>"
        assert "    <d>y</d>" in lines

    def test_pretty_print_reparses_equal(self):
        root = parse_element("<a><b>x</b><c><d>y</d></c></a>")
        reparsed = parse_element(write_element(root, indent=2))
        assert trees_equal(root, reparsed)


class TestDocumentWriter:
    def test_document_with_doctype(self):
        doc = parse_document(
            "<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r>x</r>")
        out = write_document(doc)
        assert out.startswith("<?xml")
        assert "<!DOCTYPE r [" in out
        reparsed = parse_document(out)
        assert reparsed.doctype_name == "r"
        assert reparsed.root.immediate_text() == "x"

    def test_document_without_doctype(self):
        doc = parse_document("<r/>")
        assert "<!DOCTYPE" not in write_document(doc)


DTD_SAMPLES = [
    "<!ELEMENT a (#PCDATA)>",
    "<!ELEMENT x (a?, b*, c+)><!ELEMENT a (#PCDATA)>"
    "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>",
    "<!ELEMENT x (a | b)><!ELEMENT a EMPTY><!ELEMENT b ANY>",
    "<!ELEMENT x ((a, b) | c)*><!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
    "<!ELEMENT c EMPTY>",
    "<!ELEMENT d (#PCDATA | em)*><!ELEMENT em (#PCDATA)>",
]


class TestDTDRoundTrip:
    def test_samples_roundtrip(self):
        for sample in DTD_SAMPLES:
            dtd = parse_dtd(sample)
            text = write_dtd(dtd)
            reparsed = parse_dtd(text)
            assert set(reparsed.tag_names()) == set(dtd.tag_names())
            for name in dtd.tag_names():
                assert repr(reparsed[name].model) == repr(dtd[name].model), \
                    f"model of {name} changed through round trip"

    def test_attlist_roundtrip(self):
        dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA)>"
            '<!ATTLIST a id CDATA #REQUIRED s (x|y) "x">')
        reparsed = parse_dtd(write_dtd(dtd))
        attrs = reparsed["a"].attributes
        assert attrs["id"].default == "#REQUIRED"
        assert attrs["s"].default == "x"

    def test_content_model_rendering(self):
        dtd = parse_dtd("<!ELEMENT x (a?, (b | c)+)>"
                        "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
                        "<!ELEMENT c EMPTY>")
        rendered = write_content_model(dtd["x"].model)
        assert rendered == "(a?, (b | c)+)"
