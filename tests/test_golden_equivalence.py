"""Golden equivalence: the vectorized batch path vs the per-instance path.

The throughput work rewrote every learner's ``predict_scores`` around
distinct-key dedup and batched matrix kernels, rewrote the converter as
one grouped reduction, and re-pointed parallelism at contiguous shards.
All of that is only legal because learner scoring is row-wise pure — so
this suite pins the strongest possible contract: the batch path is
**byte-identical** (``np.array_equal``, never ``allclose``) to scoring
each instance alone, for every learner, all three converter strategies,
structure re-passes, and ``--workers 1`` vs ``4`` including a forced
multi-shard plan.

It also carries the regression tests for the three NaN/zero-row fixes
that rode along: the statistics learner's empty-fit NaN rows, the
converter's non-finite-total propagation, and the meta-learner's
all-zero weight rows (healthy and quarantined paths).
"""

import numpy as np
import pytest

from repro.core import featurize
from repro.core.converter import PredictionConverter
from repro.core.labels import LabelSpace
from repro.learners import (ContentMatcher, EditDistanceNameMatcher,
                            FormatLearner, GazetteerRecognizer,
                            MetadataLearner, NaiveBayesLearner,
                            NameMatcher, NumericLearner, RegexRecognizer,
                            StackingMetaLearner, StatisticsLearner,
                            XMLLearner)

from .helpers import make_instance, space_of, training_set

SPACE = space_of("ADDRESS", "PRICE", "PHONE", "DESCRIPTION")

CITIES = ["Miami, FL", "Boston, MA", "Seattle, WA", "Kent, WA"]
PRICES = ["$ 250,000", "$ 520,000", "$ 99,500", "$ 1,200,000"]
PHONES = ["(206) 555 0100", "(305) 555 0199", "(617) 555 0123"]
BLURBS = ["Fantastic house with great location",
          "Great yard, close to the river",
          "Beautiful view, spacious rooms"]


def _training_pairs():
    pairs = []
    for text in CITIES:
        pairs.append((make_instance("location", text,
                                    path=("house", "location")),
                      "ADDRESS"))
    for text in PRICES:
        pairs.append((make_instance("listed-price", text,
                                    path=("house", "listed-price")),
                      "PRICE"))
    for text in PHONES:
        pairs.append((make_instance("phone", text,
                                    path=("house", "contact", "phone")),
                      "PHONE"))
    for text in BLURBS:
        pairs.append((make_instance("comments", text,
                                    path=("house", "comments")),
                      "DESCRIPTION"))
    return pairs


def _query_batch():
    """A duplicate-heavy mixed batch: repeated values exercise the
    distinct-key broadcast, the empty text exercises degenerate rows,
    and the structured instance exercises child-label features."""
    batch = []
    for text in ["Miami, FL", "Miami, FL", "$ 250,000", "(206) 555 0100",
                 "Great yard, close to the river", "Miami, FL", "",
                 "$ 99,500", "$ 99,500"]:
        batch.append(make_instance("area", text, path=("home", "area")))
    batch.append(make_instance(
        "person", path=("home", "person"),
        children=[("agent-name", "Kate Richardson"),
                  ("work-phone", "(206) 555 0100")],
        child_labels={"agent-name": "OTHER", "work-phone": "PHONE"}))
    batch.append(make_instance("amount", "$ 250,000",
                               path=("home", "amount")))
    return batch


LEARNER_FACTORIES = {
    "name_matcher": NameMatcher,
    "edit_distance": EditDistanceNameMatcher,
    "content_matcher": ContentMatcher,
    "naive_bayes": NaiveBayesLearner,
    "xml": XMLLearner,
    "metadata": MetadataLearner,
    "numeric": NumericLearner,
    "statistics": StatisticsLearner,
    "format": FormatLearner,
    "gazetteer": lambda: GazetteerRecognizer("ADDRESS", CITIES),
    "regex": lambda: RegexRecognizer(
        "PHONE", r"\(\d{3}\) \d{3} \d{4}"),
}


def _fitted(factory):
    learner = factory()
    instances, labels = training_set(_training_pairs())
    learner.fit(instances, labels, SPACE)
    return learner


class TestLearnerBatchEquivalence:
    """``predict_scores(batch)`` == vstack of single-instance calls."""

    @pytest.mark.parametrize("name", sorted(LEARNER_FACTORIES))
    def test_batch_matches_per_instance(self, name):
        learner = _fitted(LEARNER_FACTORIES[name])
        batch = _query_batch()
        batched = learner.predict_scores(batch)
        reference = np.vstack([learner.predict_scores([instance])
                               for instance in batch])
        assert batched.shape == (len(batch), len(SPACE))
        assert np.array_equal(batched, reference), \
            f"{name} batch path diverged from per-instance path"

    @pytest.mark.parametrize("name", sorted(LEARNER_FACTORIES))
    def test_dedup_matches_uncached_path(self, name):
        """The distinct-key dedup rides the featurize switch; turning
        memoisation off must not change a bit, only the work done."""
        learner = _fitted(LEARNER_FACTORIES[name])
        batch = _query_batch()
        batched = learner.predict_scores(batch)
        fresh = _query_batch()  # cold feature caches
        with featurize.cache_disabled():
            naive = learner.predict_scores(fresh)
        assert np.array_equal(batched, naive), \
            f"{name} dedup path diverged from the uncached path"

    def test_xml_learner_structure_repass_equivalence(self):
        """The second structure pass scores instances whose
        ``child_labels`` changed; the skeleton-key dedup must remain
        byte-identical to per-instance scoring on the relabelled batch."""
        learner = _fitted(XMLLearner)
        batch = _query_batch()
        for instance in batch:
            if instance.child_labels:
                instance.child_labels["agent-name"] = "PHONE"
        batched = learner.predict_scores(batch)
        reference = np.vstack([learner.predict_scores([instance])
                               for instance in batch])
        assert np.array_equal(batched, reference)

    def test_empty_batch_is_empty_matrix(self):
        for name, factory in LEARNER_FACTORIES.items():
            scores = _fitted(factory).predict_scores([])
            assert scores.shape == (0, len(SPACE)), name


class TestConverterEquivalence:
    """``convert_slices`` is bitwise ``convert`` per slice."""

    @staticmethod
    def _matrix():
        rng = np.random.default_rng(7)
        matrix = rng.random((12, 5))
        return matrix / matrix.sum(axis=1, keepdims=True)

    SLICES = {"a": slice(0, 4), "empty": slice(4, 4), "b": slice(4, 5),
              "c": slice(5, 12)}

    @pytest.mark.parametrize("strategy", ["mean", "median", "max"])
    def test_grouped_matches_per_tag(self, strategy):
        converter = PredictionConverter(strategy)
        matrix = self._matrix()
        grouped = converter.convert_slices(matrix, self.SLICES)
        for tag, slc in self.SLICES.items():
            assert np.array_equal(grouped[tag],
                                  converter.convert(matrix[slc])), \
                f"{strategy} diverged on {tag!r}"

    @pytest.mark.parametrize("strategy", ["mean", "median", "max"])
    def test_gap_and_overlap_layouts_agree(self, strategy):
        """Non-contiguous and overlapping slices force the per-segment
        fallback; it must agree bitwise with the batched reduceat."""
        converter = PredictionConverter(strategy)
        matrix = self._matrix()
        layouts = [
            {"x": slice(2, 6), "y": slice(8, 12)},       # gap
            {"x": slice(0, 8), "y": slice(4, 12)},       # overlap
        ]
        for slices in layouts:
            grouped = converter.convert_slices(matrix, slices)
            for tag, slc in slices.items():
                assert np.array_equal(grouped[tag],
                                      converter.convert(matrix[slc]))


class TestWorkerCountEquivalence:
    """Workers 1 vs 4, single-shard and forced multi-shard, are
    byte-identical end to end."""

    @pytest.fixture(scope="class")
    def system(self):
        from .test_core_system import trained_system
        return trained_system()

    @pytest.fixture(scope="class")
    def serial_result(self, system):
        from .test_core_system import (GREATHOMES_LISTINGS,
                                       GREATHOMES_SCHEMA)
        system.workers = 1
        return system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)

    @staticmethod
    def _assert_identical(result, reference):
        assert set(result.tag_scores) == set(reference.tag_scores)
        for tag, scores in reference.tag_scores.items():
            assert np.array_equal(result.tag_scores[tag], scores), \
                f"tag_scores diverged on {tag!r}"
        assert dict(result.mapping.items()) == \
            dict(reference.mapping.items())

    def test_par4_matches_serial(self, system, serial_result):
        from .test_core_system import (GREATHOMES_LISTINGS,
                                       GREATHOMES_SCHEMA)
        system.workers = 4
        try:
            result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)
        finally:
            system.workers = 1
        self._assert_identical(result, serial_result)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_forced_multi_shard_matches_single_shard(
            self, system, serial_result, workers, monkeypatch):
        """Default ``SHARD_TARGET_ROWS`` keeps test-sized batches on a
        single shard, so force a tiny shard target: the sharded plan
        (and its duplicate-clustering permutation) must be
        output-invisible at any worker count."""
        from repro.core import matching
        from repro.core.parallel import shard_bounds

        monkeypatch.setattr(
            matching, "shard_bounds",
            lambda n, **kwargs: shard_bounds(n, target=8, max_shards=4))
        from .test_core_system import (GREATHOMES_LISTINGS,
                                       GREATHOMES_SCHEMA)
        system.workers = workers
        try:
            result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS)
        finally:
            system.workers = 1
        self._assert_identical(result, serial_result)


class TestProcessBackendEquivalence:
    """The process backend is byte-identical to serial: mappings, tag
    score rows, quality records, and trace span structure at any
    ``--workers``.  Worker processes score shards against shared-memory
    model views, so any drift here would mean the exported arrays (or
    the span/quality plumbing back across the pipe) are unfaithful."""

    @pytest.fixture(scope="class")
    def system(self):
        from .test_core_system import trained_system
        return trained_system()

    @pytest.fixture(scope="class")
    def serial_run(self, system):
        return self._run(system, workers=1, backend="serial")

    @staticmethod
    def _run(system, workers, backend):
        from repro.observability import Observer
        from .test_core_system import (GREATHOMES_LISTINGS,
                                       GREATHOMES_SCHEMA)
        observer = Observer.full()
        system.workers = workers
        system.backend = backend
        try:
            result = system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                                  observer=observer)
        finally:
            system.workers = 1
            system.backend = "thread"
            system.close_pool()
        return result, observer

    @staticmethod
    def _assert_identical(run, reference):
        result, observer = run
        ref_result, ref_observer = reference
        assert set(result.tag_scores) == set(ref_result.tag_scores)
        for tag, scores in ref_result.tag_scores.items():
            assert np.array_equal(result.tag_scores[tag], scores), \
                f"tag_scores diverged on {tag!r}"
        assert dict(result.mapping.items()) == \
            dict(ref_result.mapping.items())
        assert [record.as_dict() for record in result.quality] == \
            [record.as_dict() for record in ref_result.quality]
        assert [(span.span_id, span.parent_id)
                for span in observer.trace.spans] == \
            [(span.span_id, span.parent_id)
             for span in ref_observer.trace.spans]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_process_matches_serial(self, system, serial_run, workers):
        run = self._run(system, workers=workers, backend="process")
        self._assert_identical(run, serial_run)

    def test_process_multi_shard_matches_serial(self, system, monkeypatch):
        """A forced multi-shard plan on the process backend — every
        (learner, shard) task crosses the pipe separately and the score
        blocks are reassembled parent-side — must be output-invisible.
        The serial reference runs under the same shard plan, since the
        per-shard spans (``learner.<name>.s<k>``) are part of the traced
        structure by design."""
        from repro.core import matching
        from repro.core.parallel import shard_bounds

        monkeypatch.setattr(
            matching, "shard_bounds",
            lambda n, **kwargs: shard_bounds(n, target=8, max_shards=4))
        reference = self._run(system, workers=1, backend="serial")
        run = self._run(system, workers=4, backend="process")
        self._assert_identical(run, reference)

    def test_no_segment_leak_after_runs(self, system):
        """``close_pool`` must release every shared-memory segment the
        pool exported (guaranteed ordering: this class's tests run the
        pool above; pytest executes methods in definition order)."""
        from repro.core.shared_arrays import segment_exists

        pool = getattr(system, "_procpool", None)
        if pool is not None:
            name = pool.segment_name
            system.close_pool()
            assert name is None or not segment_exists(name)
        assert getattr(system, "_procpool", None) is None


class TestStatisticsEmptyFit:
    """Regression: fitting on zero examples used to predict all-NaN
    rows (every centroid column masked to ``-inf``; the softmax shift
    then computed ``-inf - -inf``)."""

    def test_empty_fit_predicts_uniform(self):
        learner = StatisticsLearner()
        learner.fit([], [], SPACE)
        scores = learner.predict_scores(_query_batch())
        assert np.isfinite(scores).all()
        assert np.array_equal(scores,
                              np.full_like(scores, 1.0 / len(SPACE)))

    def test_empty_fit_empty_batch(self):
        learner = StatisticsLearner()
        learner.fit([], [], SPACE)
        assert learner.predict_scores([]).shape == (0, len(SPACE))


class TestConverterNaNGuard:
    """Regression: ``total <= 0.0`` is False for NaN, so a non-finite
    instance row used to sail through normalisation into ``tag_scores``."""

    @pytest.mark.parametrize("strategy", ["mean", "median", "max"])
    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_non_finite_rows_fall_back_to_uniform(self, strategy, poison):
        converter = PredictionConverter(strategy)
        matrix = np.full((3, 4), 0.25)
        matrix[1, 2] = poison
        row = converter.convert(matrix)
        assert np.array_equal(row, np.full(4, 0.25))

    @pytest.mark.parametrize("strategy", ["mean", "median", "max"])
    def test_poisoned_slice_stays_contained(self, strategy):
        """The NaN fallback is per tag: a poisoned column goes uniform
        while its healthy neighbours keep their exact scores."""
        converter = PredictionConverter(strategy)
        matrix = np.vstack([np.full((2, 4), 0.25),
                            [[np.nan, 0.5, 0.25, 0.25]],
                            [[0.7, 0.1, 0.1, 0.1]]])
        grouped = converter.convert_slices(
            matrix, {"ok": slice(0, 2), "bad": slice(2, 3),
                     "tail": slice(3, 4)})
        assert np.array_equal(grouped["bad"], np.full(4, 0.25))
        assert np.array_equal(grouped["ok"], np.full(4, 0.25))
        assert np.array_equal(grouped["tail"],
                              converter.convert(matrix[3:4]))

    def test_zero_total_falls_back_to_uniform(self):
        row = PredictionConverter("mean").convert(np.zeros((3, 4)))
        assert np.array_equal(row, np.full(4, 0.25))


class TestMetaZeroWeightRows:
    """Regression: clipping an all-negative ridge solution left a label
    with zero weight everywhere — no learner could vote for it, and on
    the quarantined path the renormalisation divided mass into nothing."""

    @staticmethod
    def _space():
        return LabelSpace(["A", "B"])

    def test_fit_clip_fallback_is_uniform(self):
        """Both learners score label A only when the truth is B, so the
        unregularised least-squares weight for A clips to zero; the fit
        must fall back to uniform averaging instead."""
        space = self._space()
        labels = ["B", "B", "B", "B"]
        cv = {
            "one": np.array([[0.9, 0.1, 0.0], [0.1, 0.8, 0.1],
                             [0.5, 0.4, 0.1], [0.3, 0.6, 0.1]]),
            "two": np.array([[0.2, 0.7, 0.1], [0.8, 0.1, 0.1],
                             [0.4, 0.5, 0.1], [0.6, 0.3, 0.1]]),
        }
        meta = StackingMetaLearner(regularization=0.0)
        meta.fit(cv, labels, space)
        row = meta.weights[space.index_of("A")]
        assert np.array_equal(row, np.full(2, 0.5))
        combined = meta.combine(
            {"one": np.array([[1.0, 0.0, 0.0]]),
             "two": np.array([[1.0, 0.0, 0.0]])})
        assert combined[0, space.index_of("A")] > 0.0

    def test_quarantine_renormalization_dead_row(self):
        """A label whose surviving weights are all zero gets uniform
        weighting over the survivors, not a dead column."""
        space = self._space()
        meta = StackingMetaLearner()
        meta.fit_uniform(["one", "two"], space)
        meta.weights = np.array([[1.0, 0.0],   # A: only learner one
                                 [0.5, 0.5],   # B
                                 [0.5, 0.5]])  # OTHER
        scores = np.array([[0.6, 0.3, 0.1]])
        combined = meta.combine({"two": scores}, missing_ok=True)
        assert np.isfinite(combined).all()
        # Label A's row fell back to the survivor with full mass, so
        # the combined matrix is learner two's scores, renormalised.
        assert np.array_equal(
            combined, scores / scores.sum(axis=1, keepdims=True))

    def test_healthy_path_ignores_missing_ok(self):
        """With every learner present, ``missing_ok=True`` must not
        perturb a bit (the renormalisation short-circuits)."""
        space = self._space()
        meta = StackingMetaLearner()
        meta.fit_uniform(["one", "two"], space)
        meta.weights = np.array([[0.9, 0.1], [0.2, 0.8], [0.5, 0.5]])
        scores = {
            "one": np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]),
            "two": np.array([[0.3, 0.3, 0.4], [0.25, 0.5, 0.25]]),
        }
        assert np.array_equal(meta.combine(scores),
                              meta.combine(scores, missing_ok=True))

    def test_combine_batch_matches_per_row(self):
        """The einsum combination is row-wise: combining a matrix equals
        stacking single-row combinations bitwise."""
        space = self._space()
        meta = StackingMetaLearner()
        meta.fit_uniform(["one", "two"], space)
        meta.weights = np.array([[0.9, 0.1], [0.2, 0.8], [0.5, 0.5]])
        rng = np.random.default_rng(3)
        one, two = rng.random((2, 6, 3))
        batched = meta.combine({"one": one, "two": two})
        reference = np.vstack([
            meta.combine({"one": one[i:i + 1], "two": two[i:i + 1]})
            for i in range(6)])
        assert np.array_equal(batched, reference)
