"""Live-telemetry tests: OpenMetrics exposition (rendering, parsing,
HTTP endpoint, ad-hoc CLI), resource sampling, progress events, atomic
artifact writes, and the run ledger's regression gate."""

import json
import math
import urllib.request

import pytest

from repro.observability import (Observer, parse_openmetrics,
                                 refresh_derived_gauges,
                                 render_openmetrics)
from repro.observability import ledger as run_ledger
from repro.observability.artifacts import (atomic_append_jsonl,
                                           atomic_write_text)
from repro.observability.events import (EVENT_CATALOGUE, EV_RUN_END,
                                        EV_RUN_START, EV_SHARD_COMPLETE,
                                        EV_STAGE_END, EV_STAGE_START,
                                        EventStream, NullEventStream,
                                        read_events, validate_events,
                                        validate_file)
from repro.observability.expo import (TelemetryServer, exposition_name,
                                      format_value, registry_from_summary,
                                      samples_for)
from repro.observability.expo import main as expo_main
from repro.observability.metrics import (M_CACHE_HIT_RATIO, M_CACHE_HITS,
                                         M_CACHE_MISSES, MetricsRegistry)
from repro.observability.resources import (ProcSample, ResourceSampler,
                                           read_proc_self, sample_into)
from repro.resilience import (FaultInjected, FaultPlan, FaultSpec,
                              SITE_ARTIFACT_WRITE)


# ---------------------------------------------------------------------------
# exposition names and value formatting
# ---------------------------------------------------------------------------

class TestExpositionNames:
    def test_dots_become_underscores_under_the_lsd_prefix(self):
        assert exposition_name("match.instances") == "lsd_match_instances"

    def test_hostile_characters_sanitize(self):
        assert exposition_name("a-b c/d") == "lsd_a_b_c_d"

    def test_leading_digit_guard(self):
        # The prefix already guards the full name; the sanitized stem
        # itself must stay a valid metric-name tail.
        name = exposition_name("2fast")
        assert name.startswith("lsd_")
        assert "2fast" in name

    def test_format_value_integers_and_floats(self):
        assert format_value(3) == "3"
        assert format_value(0.25) == "0.25"

    def test_format_value_specials(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_format_value_rejects_bools_and_strings(self):
        with pytest.raises(TypeError):
            format_value(True)
        with pytest.raises(TypeError):
            format_value("7")


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("match.instances").inc(40)
    registry.gauge("match.tags").set(7.0)
    histogram = registry.histogram("predict.latency",
                                   bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestRenderOpenMetrics:
    def test_counter_renders_with_total_suffix(self):
        text = render_openmetrics(_registry())
        assert "# TYPE lsd_match_instances counter" in text
        assert "lsd_match_instances_total 40" in text

    def test_gauge_renders_plain(self):
        text = render_openmetrics(_registry())
        assert "lsd_match_tags 7.0" in text

    def test_ends_with_eof_line(self):
        assert render_openmetrics(_registry()).endswith("# EOF\n")

    def test_help_comes_from_the_catalogue(self):
        registry = MetricsRegistry()
        registry.counter("match.instances").inc()
        text = render_openmetrics(registry)
        assert "# HELP lsd_match_instances " in text

    def test_labels_render_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        text = render_openmetrics(
            registry, labels={"b": 'say "hi"\n', "a": "back\\slash"})
        assert ('lsd_x_total{a="back\\\\slash",b="say \\"hi\\"\\n"} 1'
                in text)

    def test_help_escaping_of_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("match.instances").inc()
        # Rewrite HELP via the parser round-trip below instead: here we
        # just pin that catalogue HELP lines never contain raw newlines.
        for line in render_openmetrics(registry).splitlines():
            if line.startswith("# HELP"):
                assert "\n" not in line[1:]

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_registry())
        families = parse_openmetrics(text)
        samples = families["lsd_predict_latency"]["samples"]
        buckets = [(labels["le"], value)
                   for name, labels, value in samples
                   if name.endswith("_bucket")]
        assert buckets == [("0.1", 1), ("1.0", 3), ("10.0", 4),
                           ("+Inf", 5)]

    def test_histogram_sum_and_count_match_summary(self):
        registry = _registry()
        summary = registry.histogram("predict.latency").summary()
        families = parse_openmetrics(render_openmetrics(registry))
        samples = dict(
            (name, value) for name, labels, value
            in families["lsd_predict_latency"]["samples"]
            if not name.endswith("_bucket"))
        assert samples["lsd_predict_latency_count"] == summary["count"]
        assert samples["lsd_predict_latency_sum"] == \
            pytest.approx(summary["sum"])

    def test_families_sort_by_exposed_name(self):
        text = render_openmetrics(_registry())
        family_names = [line.split()[2] for line in text.splitlines()
                        if line.startswith("# TYPE")]
        assert family_names == sorted(family_names)

    def test_disabled_registry_renders_eof_only_families(self):
        from repro.observability.metrics import NullMetricsRegistry
        text = render_openmetrics(NullMetricsRegistry())
        assert text.endswith("# EOF\n")


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

class TestParseOpenMetrics:
    def test_round_trip_agrees_with_summary(self):
        registry = _registry()
        summary = registry.summary()
        families = parse_openmetrics(render_openmetrics(registry))
        for name, value in summary["counters"].items():
            ((_, _, parsed),) = samples_for(families, name)
            assert parsed == value
        for name, value in summary["gauges"].items():
            ((_, _, parsed),) = samples_for(families, name)
            assert parsed == value

    def test_label_escapes_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(2)
        labels = {"quote": 'a"b', "newline": "a\nb", "slash": "a\\b"}
        families = parse_openmetrics(
            render_openmetrics(registry, labels=labels))
        ((_, parsed, value),) = samples_for(families, "x")
        assert parsed == labels
        assert value == 2

    def test_special_values_parse(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(float("inf"))
        families = parse_openmetrics(render_openmetrics(registry))
        ((_, _, value),) = samples_for(families, "g")
        assert math.isinf(value) and value > 0

    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("lsd_x_total 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("# EOF\nlsd_x_total 1\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError):
            parse_openmetrics("lsd_x_total\n# EOF\n")


# ---------------------------------------------------------------------------
# the HTTP endpoint
# ---------------------------------------------------------------------------

class TestTelemetryServer:
    def test_metrics_and_healthz_routes(self):
        registry = _registry()
        with TelemetryServer(registry, labels={"command": "test"}) \
                as server:
            with urllib.request.urlopen(f"{server.url}/metrics") as rsp:
                body = rsp.read().decode()
                assert rsp.headers["Content-Type"].startswith(
                    "application/openmetrics-text")
            with urllib.request.urlopen(f"{server.url}/healthz") as rsp:
                assert json.loads(rsp.read()) == {"status": "ok"}
        families = parse_openmetrics(body)
        ((_, labels, value),) = samples_for(families, "match.instances")
        assert value == 40
        assert labels == {"command": "test"}

    def test_unknown_route_is_404(self):
        with TelemetryServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_scrape_agrees_with_live_summary(self):
        registry = _registry()
        with TelemetryServer(registry) as server:
            registry.counter("late.increment").inc(3)
            with urllib.request.urlopen(f"{server.url}/metrics") as rsp:
                families = parse_openmetrics(rsp.read().decode())
        ((_, _, value),) = samples_for(families, "late.increment")
        assert value == registry.summary()["counters"]["late.increment"]


# ---------------------------------------------------------------------------
# ad-hoc exposition of saved reports
# ---------------------------------------------------------------------------

class TestExpoCli:
    def test_once_prints_a_parseable_exposition(self, tmp_path, capsys):
        report = {
            "command": "match",
            "dataset": {"fingerprint": "abc123"},
            "metrics": _registry().summary(),
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert expo_main(["--report", str(path), "--once"]) == 0
        families = parse_openmetrics(capsys.readouterr().out)
        ((_, labels, value),) = samples_for(families, "match.instances")
        assert value == 40
        assert labels == {"command": "match", "fingerprint": "abc123"}

    def test_missing_report_is_an_error(self, tmp_path, capsys):
        assert expo_main(["--report", str(tmp_path / "nope.json"),
                          "--once"]) == 2

    def test_registry_from_summary_round_trips_headlines(self):
        original = _registry()
        rebuilt = registry_from_summary(original.summary())
        assert rebuilt.summary()["counters"] == \
            original.summary()["counters"]
        assert rebuilt.summary()["gauges"] == original.summary()["gauges"]
        digest = rebuilt.summary()["histograms"]["predict.latency"]
        source = original.summary()["histograms"]["predict.latency"]
        for key in ("count", "sum", "min", "max", "mean"):
            assert digest[key] == pytest.approx(source[key])


# ---------------------------------------------------------------------------
# resource sampling
# ---------------------------------------------------------------------------

class TestResources:
    def test_read_proc_self_reports_a_live_process(self):
        sample = read_proc_self()
        assert sample.rss_bytes > 0
        assert sample.cpu_seconds >= 0
        assert sample.open_fds > 0
        assert sample.threads >= 1

    def test_proc_sample_dict_round_trip(self):
        sample = ProcSample(rss_bytes=1024, cpu_seconds=0.5,
                            open_fds=7, threads=2)
        assert ProcSample.from_dict(sample.as_dict()) == sample

    def test_sample_into_sets_the_proc_gauges(self):
        registry = MetricsRegistry()
        sample = ProcSample(rss_bytes=2048, cpu_seconds=1.5,
                            open_fds=9, threads=3)
        sample_into(registry, sample)
        gauges = registry.summary()["gauges"]
        assert gauges["proc.rss_bytes"] == 2048.0
        assert gauges["proc.cpu_seconds"] == 1.5
        assert gauges["proc.open_fds"] == 9.0
        assert gauges["proc.threads"] == 3.0

    def test_sampler_with_canned_reader_is_deterministic(self):
        registry = MetricsRegistry()
        canned = iter([ProcSample(1, 0.1, 1, 1), ProcSample(2, 0.2, 2, 2)])
        sampler = ResourceSampler(registry, reader=lambda: next(canned))
        sampler.sample_once()
        assert registry.summary()["gauges"]["proc.rss_bytes"] == 1.0
        sampler.sample_once()
        assert registry.summary()["gauges"]["proc.rss_bytes"] == 2.0
        assert sampler.samples_taken == 2

    def test_sampler_thread_stops_cleanly(self):
        registry = MetricsRegistry()
        with ResourceSampler(registry, interval=0.01,
                             reader=read_proc_self) as sampler:
            sampler.sample_once()
        assert sampler.samples_taken >= 1
        assert registry.summary()["gauges"]["proc.rss_bytes"] > 0

    def test_sampler_is_inert_on_a_disabled_registry(self):
        observer = Observer()  # default: everything disabled
        sampler = ResourceSampler(observer.metrics)
        sampler.start()
        sampler.sample_once()
        sampler.close()
        assert sampler.samples_taken == 0


# ---------------------------------------------------------------------------
# progress events
# ---------------------------------------------------------------------------

class TestEventStream:
    def test_stream_emits_validates_and_publishes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventStream(path) as stream:
            stream.emit(EV_RUN_START, command="match")
            stream.emit(EV_STAGE_START, stage="extract")
            stream.emit(EV_STAGE_END, stage="extract",
                        elapsed_seconds=0.1, items=40)
            stream.emit(EV_SHARD_COMPLETE, stage="predict",
                        label="learner.nb", index=0, shards=2, rows=20)
            stream.emit(EV_RUN_END, ok=True, elapsed_seconds=0.2)
        assert path.exists()
        assert not path.with_name("events.jsonl.tmp").exists()
        events = read_events(path)
        assert [event["kind"] for event in events] == [
            "run_start", "stage_start", "stage_end", "shard_complete",
            "run_end"]
        assert validate_events(events) == []
        assert validate_file(path) == []

    def test_lines_stream_to_tmp_before_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = EventStream(path)
        stream.emit(EV_RUN_START, command="train")
        tmp = path.with_name(path.name + ".tmp")
        assert json.loads(tmp.read_text())["kind"] == "run_start"
        stream.close()

    def test_unknown_kind_rejected(self, tmp_path):
        with EventStream(tmp_path / "e.jsonl") as stream:
            with pytest.raises(ValueError):
                stream.emit("made_up_kind")

    def test_seq_gap_and_extra_key_fail_validation(self):
        problems = validate_events([
            {"seq": 1, "kind": "run_start", "ts": 1.0},
            {"seq": 3, "kind": "run_end", "ts": 2.0, "ok": True},
        ])
        assert any("seq" in problem for problem in problems)
        problems = validate_events([
            {"seq": 1, "kind": "run_start", "ts": 1.0, "bogus": 1}])
        assert problems

    def test_decreasing_timestamps_fail_validation(self):
        problems = validate_events([
            {"seq": 1, "kind": "run_start", "ts": 2.0},
            {"seq": 2, "kind": "run_end", "ts": 1.0, "ok": True},
        ])
        assert problems

    def test_null_stream_is_inert(self):
        stream = NullEventStream()
        assert stream.enabled is False
        assert stream.emit(EV_RUN_START) == {}
        stream.close()

    def test_every_catalogued_kind_validates(self, tmp_path):
        payloads = {
            EV_RUN_START: {"command": "match"},
            EV_RUN_END: {"ok": True, "elapsed_seconds": 0.1},
            EV_STAGE_START: {"stage": "extract"},
            EV_STAGE_END: {"stage": "extract", "elapsed_seconds": 0.1},
            EV_SHARD_COMPLETE: {"stage": "predict", "label": "nb",
                                "index": 0, "shards": 1, "rows": 4},
            "degradation": {"reason": "quarantined 1 learner(s)"},
            "checkpoint": {"stage": "open", "run_id": "abcd-a1",
                           "resumed_from": "abcd-a0"},
            "resume": {"stage": "extract"},
        }
        assert set(payloads) == set(EVENT_CATALOGUE)
        with EventStream(tmp_path / "all.jsonl") as stream:
            for kind, payload in payloads.items():
                stream.emit(kind, **payload)
        assert validate_file(tmp_path / "all.jsonl") == []


# ---------------------------------------------------------------------------
# atomic artifact writes
# ---------------------------------------------------------------------------

class TestAtomicWrites:
    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]

    def test_injected_crash_between_write_and_rename(self, tmp_path):
        """The artifact.write fault site fires at the worst instant —
        after the temp file is complete, before the rename — and the
        destination must keep its previous content."""
        path = tmp_path / "report.json"
        atomic_write_text(path, '{"run": 1}')
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_ARTIFACT_WRITE, key="report.json"),))
        with pytest.raises(FaultInjected):
            atomic_write_text(path, '{"run": 2}', plan=plan)
        assert path.read_text() == '{"run": 1}'
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_append_jsonl_preserves_prior_lines_on_crash(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        atomic_append_jsonl(path, '{"n": 1}')
        plan = FaultPlan(specs=(
            FaultSpec(site=SITE_ARTIFACT_WRITE, key="ledger.jsonl"),))
        with pytest.raises(FaultInjected):
            atomic_append_jsonl(path, '{"n": 2}', plan=plan)
        assert path.read_text() == '{"n": 1}\n'
        atomic_append_jsonl(path, '{"n": 2}')
        assert [json.loads(line) for line in path.read_text().splitlines()
                ] == [{"n": 1}, {"n": 2}]


# ---------------------------------------------------------------------------
# the run ledger
# ---------------------------------------------------------------------------

def _entry(total: float, created: float, accuracy=None,
           label: str = "match", fingerprint: str = "f00d") -> dict:
    return run_ledger.build_entry(
        label=label, fingerprint=fingerprint, created=created,
        timings={"predict": total * 0.8, "total": total},
        metrics={"instances": 40}, accuracy=accuracy)


class TestLedger:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        entry = _entry(1.0, created=100.0)
        run_ledger.append_entry(entry, path)
        assert run_ledger.read_ledger(path) == [entry]

    def test_malformed_line_reports_its_number(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\n{nope\n')
        with pytest.raises(ValueError, match="2"):
            run_ledger.read_ledger(path)

    def test_history_renders_every_entry(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for i in range(3):
            run_ledger.append_entry(_entry(1.0 + i, created=float(i)),
                                    path)
        text = run_ledger.render_history(run_ledger.read_ledger(path))
        assert text.count("match") >= 3

    def test_diff_reports_timing_ratio(self):
        diff = run_ledger.diff_entries(_entry(1.0, created=1.0),
                                       _entry(2.0, created=2.0))
        rendered = run_ledger.render_diff(diff)
        assert "2.00x" in rendered

    def test_check_passes_on_steady_timings(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for i in range(4):
            run_ledger.append_entry(_entry(1.0, created=float(i)), path)
        ok, text = run_ledger.check_ledger(path)
        assert ok
        assert "ok" in text

    def test_check_flags_a_2x_slowdown_vs_3_run_baseline(self, tmp_path):
        """The acceptance case: three steady baseline runs, then one at
        2x — ``ledger check`` must flag it (threshold 1.5x)."""
        path = tmp_path / "ledger.jsonl"
        for i in range(3):
            run_ledger.append_entry(_entry(1.0, created=float(i)), path)
        run_ledger.append_entry(_entry(2.0, created=3.0), path)
        ok, text = run_ledger.check_ledger(path, window=3)
        assert not ok
        assert "REGRESSION" in text

    def test_check_flags_an_accuracy_drop(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for i in range(3):
            run_ledger.append_entry(
                _entry(1.0, created=float(i), accuracy=0.95), path)
        run_ledger.append_entry(
            _entry(1.0, created=3.0, accuracy=0.90), path)
        ok, text = run_ledger.check_ledger(path)
        assert not ok

    def test_single_run_has_no_baseline(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        run_ledger.append_entry(_entry(1.0, created=0.0), path)
        ok, text = run_ledger.check_ledger(path)
        assert ok
        assert "no baseline" in text

    def test_series_are_keyed_by_label_and_fingerprint(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for i in range(3):
            run_ledger.append_entry(_entry(1.0, created=float(i)), path)
        # A 2x run of a *different* dataset must not trip the gate.
        run_ledger.append_entry(
            _entry(2.0, created=3.0, fingerprint="beef"), path)
        ok, _ = run_ledger.check_ledger(path)
        assert ok

    def test_check_honors_a_custom_threshold(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        for i in range(3):
            run_ledger.append_entry(_entry(1.0, created=float(i)), path)
        run_ledger.append_entry(_entry(2.0, created=3.0), path)
        ok, _ = run_ledger.check_ledger(path, max_slowdown=3.0)
        assert ok


# ---------------------------------------------------------------------------
# the cache-hit-ratio gauge after worker merges
# ---------------------------------------------------------------------------

class TestCacheHitRatioRefresh:
    def test_merge_then_refresh_recomputes_from_counters(self):
        """Gauge.merge is last-writer-wins, so the merged ratio gauge is
        whichever worker merged last — refresh_derived_gauges must
        recompute it from the (correctly summed) hit/miss counters."""
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter(M_CACHE_HITS).inc(90)
        main.counter(M_CACHE_MISSES).inc(10)
        main.gauge(M_CACHE_HIT_RATIO).set(0.9)
        worker.counter(M_CACHE_HITS).inc(0)
        worker.counter(M_CACHE_MISSES).inc(100)
        worker.gauge(M_CACHE_HIT_RATIO).set(0.0)
        main.merge(worker)
        # Last writer won: the gauge now lies.
        assert main.summary()["gauges"][M_CACHE_HIT_RATIO] == 0.0
        refresh_derived_gauges(main)
        assert main.summary()["gauges"][M_CACHE_HIT_RATIO] == \
            pytest.approx(90 / 200)

    def test_refresh_is_a_no_op_without_cache_traffic(self):
        registry = MetricsRegistry()
        refresh_derived_gauges(registry)
        assert M_CACHE_HIT_RATIO not in registry.summary()["gauges"]

    def test_render_openmetrics_refreshes_before_exposing(self):
        registry = MetricsRegistry()
        registry.counter(M_CACHE_HITS).inc(3)
        registry.counter(M_CACHE_MISSES).inc(1)
        registry.gauge(M_CACHE_HIT_RATIO).set(0.0)  # stale
        families = parse_openmetrics(render_openmetrics(registry))
        ((_, _, value),) = samples_for(families, M_CACHE_HIT_RATIO)
        assert value == pytest.approx(0.75)
