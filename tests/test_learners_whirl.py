"""Tests for the WHIRL nearest-neighbour engine."""

import numpy as np
import pytest

from repro.learners import WhirlIndex

from .helpers import space_of


@pytest.fixture
def space():
    return space_of("ADDRESS", "DESCRIPTION", "AGENT-PHONE")


@pytest.fixture
def fitted(space):
    index = WhirlIndex()
    docs = [
        ["location"], ["location", "address"], ["house", "addr"],
        ["comments"], ["description"], ["remarks"],
        ["phone"], ["contact", "phone"], ["telephone"],
    ]
    labels = (["ADDRESS"] * 3 + ["DESCRIPTION"] * 3 + ["AGENT-PHONE"] * 3)
    index.fit(docs, labels, space)
    return index


class TestScoring:
    def test_exact_match_wins(self, fitted, space):
        scores = fitted.scores([["phone"]])
        assert scores.shape == (1, len(space))
        best = space.label_at(int(np.argmax(scores[0])))
        assert best == "AGENT-PHONE"

    def test_partial_overlap(self, fitted, space):
        scores = fitted.scores([["office", "phone"]])
        best = space.label_at(int(np.argmax(scores[0])))
        assert best == "AGENT-PHONE"

    def test_no_overlap_gives_uniform(self, fitted, space):
        scores = fitted.scores([["zzz"]])
        assert np.allclose(scores[0], 1.0 / len(space))

    def test_rows_normalised(self, fitted):
        scores = fitted.scores([["location"], ["phone"], ["comments"]])
        assert np.allclose(scores.sum(axis=1), 1.0)
        assert np.all(scores >= 0)

    def test_multiple_neighbors_reinforce(self, space):
        # Two moderately similar neighbours of one label should beat one
        # equally similar neighbour of another.
        index = WhirlIndex()
        docs = [["a", "x"], ["a", "y"], ["a", "z"]]
        labels = ["ADDRESS", "ADDRESS", "DESCRIPTION"]
        index.fit(docs, labels, space)
        scores = index.scores([["a"]])
        assert scores[0, space.index_of("ADDRESS")] > \
            scores[0, space.index_of("DESCRIPTION")]

    def test_empty_query_list(self, fitted, space):
        assert fitted.scores([]).shape == (0, len(space))


class TestConfiguration:
    def test_min_similarity_filters(self, space):
        index = WhirlIndex(min_similarity=0.99)
        index.fit([["location", "extra", "words", "here"]], ["ADDRESS"],
                  space)
        scores = index.scores([["location"]])
        # Similarity below the threshold: nothing votes, uniform output.
        assert np.allclose(scores[0], 1.0 / len(space))

    def test_deduplication(self, space):
        index = WhirlIndex(deduplicate=True)
        index.fit([["phone"]] * 500 + [["location"]],
                  ["AGENT-PHONE"] * 500 + ["ADDRESS"], space)
        assert index._label_matrix.shape[0] == 2

    def test_top_k_limits_votes(self, space):
        index = WhirlIndex(max_neighbors=2)
        sims = np.array([[0.9, 0.8, 0.7, 0.6, 0.5]])
        kept = index._keep_top_k(sims)
        assert np.count_nonzero(kept) == 2
        assert kept[0, 0] == 0.9 and kept[0, 1] == 0.8

    def test_many_duplicate_votes_do_not_drown_exact_match(self, space):
        # 50 weak neighbours of one label vs one strong neighbour of
        # another: top-k keeps the strong neighbour competitive.
        index = WhirlIndex(max_neighbors=5, deduplicate=False)
        docs = [["w", "common", str(i)] for i in range(50)] + [["w"]]
        labels = ["ADDRESS"] * 50 + ["AGENT-PHONE"]
        index.fit(docs, labels, space)
        scores = index.scores([["w"]])
        assert scores[0, space.index_of("AGENT-PHONE")] > 0.2

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WhirlIndex().scores([["x"]])

    def test_top_k_ties_keep_exactly_k(self, space):
        """Regression: a pure >=-threshold test kept *every* neighbour
        tied at the k-th similarity, so k=2 here used to keep four
        entries. Ties break by stored index: the first 0.5 survives."""
        index = WhirlIndex(max_neighbors=2)
        sims = np.array([[0.5, 0.9, 0.5, 0.5, 0.2]])
        kept = index._keep_top_k(sims)
        assert np.count_nonzero(kept) == 2
        assert kept[0, 1] == 0.9
        assert kept[0, 0] == 0.5
        assert kept[0, 2] == 0.0 and kept[0, 3] == 0.0

    def test_tied_duplicates_cannot_inflate_their_label(self, space):
        """End to end: two identical stored docs tie for the single
        neighbour slot. Only one may vote, so its label cannot collect
        a doubled score."""
        index = WhirlIndex(max_neighbors=1, deduplicate=False)
        index.fit([["x"], ["x"]], ["ADDRESS", "DESCRIPTION"], space)
        scores = index.scores([["x"]])
        # The index-0 document wins the tie; only ADDRESS gets the vote.
        assert scores[0, space.index_of("ADDRESS")] > \
            scores[0, space.index_of("DESCRIPTION")]

    def test_query_dedup_matches_naive_scoring(self, fitted):
        """Collapsing duplicate query rows is an implementation detail:
        scores must equal the uncached row-by-row pipeline."""
        from repro.core import featurize
        queries = [["phone"], ["location"], ["phone"], ["phone"],
                   ["comments"], ["location"]]
        cached = fitted.scores(queries)
        with featurize.cache_disabled():
            naive = fitted.scores(queries)
        assert np.array_equal(cached, naive)
        assert np.array_equal(cached[0], cached[2])

    def test_length_mismatch_raises(self, space):
        with pytest.raises(ValueError):
            WhirlIndex().fit([["a"]], ["X", "Y"], space)

    def test_empty_fit_raises(self, space):
        with pytest.raises(ValueError):
            WhirlIndex().fit([], [], space)
