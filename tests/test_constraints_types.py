"""Tests for the individual constraint types (Table 1 of the paper)."""

import pytest

from repro.constraints import (AssignmentConstraint, ContiguityConstraint,
                               ExclusionConstraint, ExclusivityConstraint,
                               FrequencyConstraint,
                               FunctionalDependencyConstraint,
                               KeyConstraint, MatchContext,
                               MaxCountSoftConstraint, NestingConstraint,
                               ProximityConstraint)
from repro.core.instance import extract_columns
from repro.core.schema import SourceSchema
from repro.xmlio import parse_fragments

SCHEMA_TEXT = """
<!ELEMENT listing (house-id, baths, extra, beds, agent-info)>
<!ELEMENT house-id (#PCDATA)>
<!ELEMENT baths (#PCDATA)>
<!ELEMENT extra (#PCDATA)>
<!ELEMENT beds (#PCDATA)>
<!ELEMENT agent-info (agent-name, firm-city, firm-name, firm-address)>
<!ELEMENT agent-name (#PCDATA)>
<!ELEMENT firm-city (#PCDATA)>
<!ELEMENT firm-name (#PCDATA)>
<!ELEMENT firm-address (#PCDATA)>
"""

LISTINGS_TEXT = """
<listing><house-id>1</house-id><baths>2</baths><extra>x</extra>
  <beds>3</beds>
  <agent-info><agent-name>Ann</agent-name><firm-city>Seattle</firm-city>
  <firm-name>MAX</firm-name><firm-address>1 Pine St</firm-address>
  </agent-info></listing>
<listing><house-id>2</house-id><baths>2</baths><extra>y</extra>
  <beds>4</beds>
  <agent-info><agent-name>Bob</agent-name><firm-city>Seattle</firm-city>
  <firm-name>MAX</firm-name><firm-address>1 Pine St</firm-address>
  </agent-info></listing>
<listing><house-id>3</house-id><baths>3</baths><extra>z</extra>
  <beds>3</beds>
  <agent-info><agent-name>Cat</agent-name><firm-city>Portland</firm-city>
  <firm-name>MAX</firm-name><firm-address>9 Oak Ave</firm-address>
  </agent-info></listing>
"""


@pytest.fixture
def ctx():
    schema = SourceSchema(SCHEMA_TEXT, name="test-source")
    listings = parse_fragments(LISTINGS_TEXT)
    return MatchContext(schema, extract_columns(schema, listings))


class TestFrequency:
    def test_at_most_one_violated(self, ctx):
        c = FrequencyConstraint.at_most_one("HOUSE")
        assert c.check_partial({"a": "HOUSE", "b": "HOUSE"}, ctx)
        assert c.check_complete({"a": "HOUSE", "b": "HOUSE"}, ctx)

    def test_at_most_one_satisfied(self, ctx):
        c = FrequencyConstraint.at_most_one("HOUSE")
        assert not c.check_complete({"a": "HOUSE", "b": "OTHER"}, ctx)

    def test_exactly_one_partial_not_definite_when_missing(self, ctx):
        # Zero HOUSE assignments so far could still be repaired.
        c = FrequencyConstraint.exactly_one("HOUSE")
        assert not c.check_partial({"a": "OTHER"}, ctx)
        assert c.check_complete({"a": "OTHER"}, ctx)

    def test_between(self, ctx):
        c = FrequencyConstraint("PHONE", 1, 2)
        assert not c.check_complete({"a": "PHONE", "b": "PHONE"}, ctx)
        assert c.check_complete(
            {"a": "PHONE", "b": "PHONE", "c": "PHONE"}, ctx)

    def test_other_label_rejected(self):
        with pytest.raises(ValueError):
            FrequencyConstraint("OTHER")

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            FrequencyConstraint("X", 2, 1)

    def test_describe(self):
        assert "exactly 1" in FrequencyConstraint.exactly_one("PRICE"
                                                              ).describe()


class TestNesting:
    def test_required_nesting_satisfied(self, ctx):
        c = NestingConstraint("AGENT-INFO", "AGENT-NAME")
        assignment = {"agent-info": "AGENT-INFO",
                      "agent-name": "AGENT-NAME"}
        assert not c.check_complete(assignment, ctx)

    def test_required_nesting_violated(self, ctx):
        c = NestingConstraint("AGENT-INFO", "AGENT-NAME")
        assignment = {"agent-info": "AGENT-INFO", "baths": "AGENT-NAME"}
        assert c.check_partial(assignment, ctx)

    def test_forbidden_nesting(self, ctx):
        c = NestingConstraint("AGENT-INFO", "PRICE", forbidden=True)
        assert c.check_complete(
            {"agent-info": "AGENT-INFO", "firm-name": "PRICE"}, ctx)
        assert not c.check_complete(
            {"agent-info": "AGENT-INFO", "baths": "PRICE"}, ctx)

    def test_vacuous_when_labels_absent(self, ctx):
        c = NestingConstraint("AGENT-INFO", "AGENT-NAME")
        assert not c.check_complete({"baths": "BATHS"}, ctx)


class TestContiguity:
    def test_adjacent_siblings_ok(self, ctx):
        c = ContiguityConstraint("BATHS", "BEDS")
        assignment = {"baths": "BATHS", "beds": "BEDS", "extra": "OTHER"}
        assert not c.check_complete(assignment, ctx)

    def test_tag_between_must_be_other(self, ctx):
        c = ContiguityConstraint("BATHS", "BEDS")
        assignment = {"baths": "BATHS", "beds": "BEDS", "extra": "PRICE"}
        assert c.check_complete(assignment, ctx)

    def test_non_siblings_violate(self, ctx):
        c = ContiguityConstraint("BATHS", "BEDS")
        assignment = {"baths": "BATHS", "agent-name": "BEDS"}
        assert c.check_complete(assignment, ctx)

    def test_unassigned_between_tag_tolerated_partially(self, ctx):
        c = ContiguityConstraint("BATHS", "BEDS")
        # 'extra' not yet assigned: not a definite violation.
        assert not c.check_partial({"baths": "BATHS", "beds": "BEDS"}, ctx)


class TestExclusivity:
    def test_both_present_violates(self, ctx):
        c = ExclusivityConstraint("COURSE-CREDIT", "SECTION-CREDIT")
        assert c.check_complete(
            {"a": "COURSE-CREDIT", "b": "SECTION-CREDIT"}, ctx)

    def test_one_present_ok(self, ctx):
        c = ExclusivityConstraint("COURSE-CREDIT", "SECTION-CREDIT")
        assert not c.check_complete({"a": "COURSE-CREDIT"}, ctx)


class TestKey:
    def test_unique_column_satisfies(self, ctx):
        c = KeyConstraint("HOUSE-ID")
        assert not c.check_complete({"house-id": "HOUSE-ID"}, ctx)

    def test_duplicated_column_violates(self, ctx):
        """The paper's example: num-bedrooms cannot be HOUSE-ID because its
        values contain duplicates."""
        c = KeyConstraint("HOUSE-ID")
        assert c.check_complete({"beds": "HOUSE-ID"}, ctx)
        assert c.check_partial({"baths": "HOUSE-ID"}, ctx)

    def test_no_data_means_no_violation(self, ctx):
        c = KeyConstraint("HOUSE-ID")
        assert not c.check_complete({"unknown-tag": "HOUSE-ID"}, ctx)


class TestFunctionalDependency:
    def test_holding_fd(self, ctx):
        c = FunctionalDependencyConstraint(["CITY", "FIRM-NAME"],
                                           "FIRM-ADDRESS")
        assignment = {"firm-city": "CITY", "firm-name": "FIRM-NAME",
                      "firm-address": "FIRM-ADDRESS"}
        assert not c.check_complete(assignment, ctx)

    def test_refuted_fd(self, ctx):
        # firm-name alone does not determine firm-address (MAX has two).
        c = FunctionalDependencyConstraint(["FIRM-NAME"], "FIRM-ADDRESS")
        assignment = {"firm-name": "FIRM-NAME",
                      "firm-address": "FIRM-ADDRESS"}
        assert c.check_complete(assignment, ctx)

    def test_unassigned_determinant_is_vacuous(self, ctx):
        c = FunctionalDependencyConstraint(["CITY"], "FIRM-ADDRESS")
        assert not c.check_complete({"firm-address": "FIRM-ADDRESS"}, ctx)

    def test_needs_determinants(self):
        with pytest.raises(ValueError):
            FunctionalDependencyConstraint([], "X")


class TestSoftConstraints:
    def test_max_count_soft(self, ctx):
        c = MaxCountSoftConstraint("DESCRIPTION", 2)
        under = {"a": "DESCRIPTION", "b": "DESCRIPTION"}
        over = {**under, "c": "DESCRIPTION"}
        assert c.cost(under, ctx) == 0.0
        assert c.cost(over, ctx) == 1.0

    def test_proximity_adjacent_is_free(self, ctx):
        c = ProximityConstraint("BATHS", "BEDS")
        assert c.cost({"baths": "BATHS", "extra": "BEDS"}, ctx) == 0.0

    def test_proximity_grows_with_distance(self, ctx):
        c = ProximityConstraint("BATHS", "BEDS")
        near = c.cost({"baths": "BATHS", "extra": "BEDS"}, ctx)
        far = c.cost({"house-id": "BATHS", "beds": "BEDS"}, ctx)
        assert far > near

    def test_proximity_non_siblings_max_cost(self, ctx):
        c = ProximityConstraint("BATHS", "BEDS")
        assert c.cost({"baths": "BATHS", "agent-name": "BEDS"},
                      ctx) == 1.0

    def test_proximity_vacuous_when_absent(self, ctx):
        c = ProximityConstraint("BATHS", "BEDS")
        assert c.cost({"baths": "BATHS"}, ctx) == 0.0


class TestFeedbackConstraints:
    def test_assignment_pins(self, ctx):
        c = AssignmentConstraint("ad-id", "HOUSE-ID")
        assert c.check_complete({"ad-id": "OTHER"}, ctx)
        assert not c.check_complete({"ad-id": "HOUSE-ID"}, ctx)
        # Unassigned tag is not a *partial* violation.
        assert not c.check_partial({}, ctx)

    def test_exclusion_forbids(self, ctx):
        c = ExclusionConstraint("ad-id", "HOUSE-ID")
        assert c.check_partial({"ad-id": "HOUSE-ID"}, ctx)
        assert not c.check_complete({"ad-id": "OTHER"}, ctx)
