"""Tests for the deterministic parallel executor."""

import pytest

from repro.core.parallel import SERIAL, ParallelExecutor, resolve


class TestMap:
    def test_serial_preserves_order(self):
        executor = ParallelExecutor(1)
        assert executor.map(lambda x: x * 2, range(10)) == \
            [x * 2 for x in range(10)]

    def test_parallel_preserves_order(self):
        executor = ParallelExecutor(4)
        items = list(range(200))
        assert executor.map(lambda x: x * x, items) == \
            [x * x for x in items]

    def test_parallel_matches_serial_exactly(self):
        items = [[i, i + 1] for i in range(50)]
        fn = lambda pair: sum(pair) / 7.0  # noqa: E731
        assert ParallelExecutor(4).map(fn, items) == \
            ParallelExecutor(1).map(fn, items)

    def test_single_item_skips_pool(self):
        # len(items) <= 1 takes the serial path even when parallel.
        assert ParallelExecutor(8).map(lambda x: x + 1, [41]) == [42]

    def test_empty_items(self):
        assert ParallelExecutor(4).map(lambda x: x, []) == []

    def test_exception_propagates_serial(self):
        def boom(x):
            raise ValueError(f"bad item {x}")
        with pytest.raises(ValueError, match="bad item 0"):
            ParallelExecutor(1).map(boom, [0, 1])

    def test_exception_propagates_parallel(self):
        def boom(x):
            if x == 3:
                raise ValueError("bad item 3")
            return x
        with pytest.raises(ValueError, match="bad item 3"):
            ParallelExecutor(4).map(boom, range(8))

    def test_first_failure_in_submission_order_wins(self):
        """When several items fail, the earliest *submitted* failure
        raises — even if a later item fails first on the wall clock.
        Item 0 sleeps before failing while item 5 fails immediately;
        the serial path trivially raises item 0's error, and the
        parallel path must match it exactly."""
        import threading

        item5_failed = threading.Event()

        def boom(x):
            if x == 0:
                # Don't fail until the later item already has.
                item5_failed.wait(timeout=5)
                raise KeyError("submitted first")
            if x == 5:
                try:
                    raise IndexError("finished failing first")
                finally:
                    item5_failed.set()
            return x

        with pytest.raises(KeyError, match="submitted first"):
            ParallelExecutor(8).map(boom, range(8))


class TestStarmap:
    def test_unpacks_argument_tuples(self):
        executor = ParallelExecutor(2)
        assert executor.starmap(lambda a, b: a + b,
                                [(1, 2), (3, 4)]) == [3, 7]


class TestMapProfiled:
    @staticmethod
    def _timed(x, profile):
        with profile.stage(f"task.{x % 2}"):
            profile.count("tasks")
        return x * 2

    def test_serial_shares_the_profile(self):
        from repro.observability import StageProfile
        profile = StageProfile()
        results = ParallelExecutor(1).map_profiled(
            self._timed, range(4), profile)
        assert results == [0, 2, 4, 6]
        assert profile.counters["tasks"] == 4

    def test_parallel_merges_worker_profiles(self):
        from repro.observability import StageProfile
        profile = StageProfile()
        results = ParallelExecutor(4).map_profiled(
            self._timed, range(8), profile)
        assert results == [x * 2 for x in range(8)]
        assert profile.counters["tasks"] == 8
        assert set(profile.timings) == {"task.0", "task.1"}

    def test_parallel_matches_serial(self):
        from repro.observability import StageProfile
        serial, parallel = StageProfile(), StageProfile()
        a = ParallelExecutor(1).map_profiled(self._timed, range(10),
                                             serial)
        b = ParallelExecutor(4).map_profiled(self._timed, range(10),
                                             parallel)
        assert a == b
        assert serial.counters == parallel.counters


class TestConstruction:
    def test_workers_floor_is_one(self):
        assert ParallelExecutor(0).workers == 1
        assert ParallelExecutor(-3).workers == 1

    def test_is_parallel(self):
        assert not ParallelExecutor(1).is_parallel
        assert ParallelExecutor(2).is_parallel

    def test_resolve_defaults_to_serial(self):
        assert resolve(None) is SERIAL
        custom = ParallelExecutor(3)
        assert resolve(custom) is custom
        assert not SERIAL.is_parallel
