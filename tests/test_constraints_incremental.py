"""Push/pop evaluator tests: every constraint type's incremental
evaluator must agree with its full-scan checks under the search engine's
discipline.

The engine's contract (see :mod:`repro.constraints.base`): ``push`` is
called after the pair enters the assignment, only for labels the
constraint watches (``relevant_labels``); a violating push is popped
immediately; pops arrive in LIFO order with the pair still assigned.
Each test drives a long random walk of pushes and pops under exactly
that discipline and checks, at every step, that

* the evaluator's verdict equals ``check_partial`` on the same
  assignment (ground truth);
* a *fresh* evaluator replaying the current stack from scratch gives
  the same verdict — which fails if any pop left stale state behind
  (push/pop symmetry);
* at complete assignments, ``complete_violation`` equals
  ``check_complete``.
"""

import numpy as np
import pytest

from repro.constraints import (AssignmentConstraint, ContiguityConstraint,
                               ExclusionConstraint, ExclusivityConstraint,
                               FrequencyConstraint,
                               FunctionalDependencyConstraint,
                               KeyConstraint, MatchContext,
                               MaxCountSoftConstraint, NestingConstraint)
from repro.core.instance import extract_columns
from repro.core.schema import SourceSchema
from repro.xmlio import parse_fragments

SCHEMA_TEXT = """
<!ELEMENT listing (house-id, baths, extra, beds, agent-info)>
<!ELEMENT house-id (#PCDATA)>
<!ELEMENT baths (#PCDATA)>
<!ELEMENT extra (#PCDATA)>
<!ELEMENT beds (#PCDATA)>
<!ELEMENT agent-info (agent-name, firm-city, firm-name, firm-address)>
<!ELEMENT agent-name (#PCDATA)>
<!ELEMENT firm-city (#PCDATA)>
<!ELEMENT firm-name (#PCDATA)>
<!ELEMENT firm-address (#PCDATA)>
"""

LISTINGS_TEXT = """
<listing><house-id>1</house-id><baths>2</baths><extra>x</extra>
  <beds>3</beds>
  <agent-info><agent-name>Ann</agent-name><firm-city>Seattle</firm-city>
  <firm-name>MAX</firm-name><firm-address>1 Pine St</firm-address>
  </agent-info></listing>
<listing><house-id>2</house-id><baths>2</baths><extra>y</extra>
  <beds>4</beds>
  <agent-info><agent-name>Bob</agent-name><firm-city>Seattle</firm-city>
  <firm-name>MAX</firm-name><firm-address>1 Pine St</firm-address>
  </agent-info></listing>
<listing><house-id>3</house-id><baths>3</baths><extra>z</extra>
  <beds>3</beds>
  <agent-info><agent-name>Cat</agent-name><firm-city>Portland</firm-city>
  <firm-name>MAX</firm-name><firm-address>9 Oak Ave</firm-address>
  </agent-info></listing>
"""

TAGS = ("house-id", "baths", "extra", "beds", "agent-info", "agent-name")
LABELS = ("HOUSE-ID", "BATHS", "BEDS", "AGENT-INFO", "AGENT-NAME",
          "FIRM-NAME", "FIRM-ADDRESS", "OTHER")

HARD_CONSTRAINTS = [
    FrequencyConstraint.at_most_one("BATHS"),
    FrequencyConstraint.exactly_one("HOUSE-ID"),
    FrequencyConstraint("BEDS", 1, 2),
    NestingConstraint("AGENT-INFO", "AGENT-NAME"),
    NestingConstraint("AGENT-INFO", "BATHS", forbidden=True),
    NestingConstraint("BATHS", "BATHS"),  # degenerate outer == inner
    ContiguityConstraint("BATHS", "BEDS"),
    ContiguityConstraint("BATHS", "BATHS"),  # degenerate label_a == label_b
    ExclusivityConstraint("BATHS", "AGENT-NAME"),
    KeyConstraint("HOUSE-ID"),
    FunctionalDependencyConstraint(["FIRM-NAME"], "FIRM-ADDRESS"),
    FunctionalDependencyConstraint(["HOUSE-ID", "FIRM-NAME"],
                                   "FIRM-ADDRESS"),
    AssignmentConstraint("house-id", "HOUSE-ID"),
    AssignmentConstraint("unseen-tag", "HOUSE-ID"),  # never-pushed pin
    ExclusionConstraint("baths", "BATHS"),
]


@pytest.fixture(scope="module")
def ctx():
    schema = SourceSchema(SCHEMA_TEXT, name="test-source")
    listings = parse_fragments(LISTINGS_TEXT)
    return MatchContext(schema, extract_columns(schema, listings))


def _watches(constraint, label):
    labels = constraint.relevant_labels()
    return labels is None or label in labels


def _replay_verdict(constraint, ctx, stack, tag, label):
    """A fresh evaluator fed the whole stack then the new pair: its final
    verdict must match the long-lived evaluator's."""
    ev = constraint.evaluator(ctx)
    assignment = {}
    for done_tag, done_label in stack:
        assignment[done_tag] = done_label
        if _watches(constraint, done_label):
            assert not ev.push(done_tag, done_label, assignment, ctx), \
                "replayed prefix must be violation-free"
    assignment[tag] = label
    if not _watches(constraint, label):
        return False
    return ev.push(tag, label, assignment, ctx)


def _random_walk(constraint, ctx, seed, steps=250):
    """Drive one evaluator through a random push/pop walk under engine
    discipline, checking it against the full-scan checks throughout."""
    rng = np.random.default_rng(seed)
    evaluator = constraint.evaluator(ctx)
    assignment: dict[str, str] = {}
    stack: list[tuple[str, str]] = []
    unassigned = list(TAGS)
    completes_seen = 0

    for _ in range(steps):
        do_pop = stack and (not unassigned or rng.random() < 0.4)
        if do_pop:
            tag, label = stack.pop()
            if _watches(constraint, label):
                evaluator.pop(tag, label, assignment, ctx)
            del assignment[tag]
            unassigned.append(tag)
            continue
        tag = unassigned[int(rng.integers(len(unassigned)))]
        label = LABELS[int(rng.integers(len(LABELS)))]
        assignment[tag] = label
        verdict = False
        if _watches(constraint, label):
            verdict = evaluator.push(tag, label, assignment, ctx)
        truth = constraint.check_partial(assignment, ctx)
        assert verdict == truth, (
            f"{constraint.describe()}: push({tag}={label}) said "
            f"{verdict}, check_partial says {truth} on {assignment}")
        assert verdict == _replay_verdict(constraint, ctx, stack, tag,
                                          label), (
            f"{constraint.describe()}: long-lived evaluator diverged "
            f"from a fresh replay — a pop left stale state behind")
        if verdict:
            # Engine discipline: a violating push is popped immediately.
            evaluator.pop(tag, label, assignment, ctx)
            del assignment[tag]
            continue
        stack.append((tag, label))
        unassigned.remove(tag)
        if not unassigned:
            completes_seen += 1
            assert evaluator.complete_violation(assignment, ctx) == \
                constraint.check_complete(assignment, ctx), (
                    f"{constraint.describe()}: complete_violation "
                    f"disagrees with check_complete on {assignment}")
    return completes_seen


class TestIncrementalEquivalence:
    @pytest.mark.parametrize(
        "constraint", HARD_CONSTRAINTS,
        ids=[c.describe() for c in HARD_CONSTRAINTS])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_walk_matches_full_scans(self, constraint, ctx, seed):
        _random_walk(constraint, ctx, seed)

    @pytest.mark.parametrize(
        "constraint", HARD_CONSTRAINTS,
        ids=[c.describe() for c in HARD_CONSTRAINTS])
    def test_walks_reach_complete_assignments(self, constraint, ctx):
        # The symmetry checks above are only meaningful if the walks
        # actually reach complete assignments; guard against a drifting
        # walk shape silently weakening the suite.
        total = sum(_random_walk(constraint, ctx, seed)
                    for seed in range(4))
        assert total > 0


class TestSoftEvaluator:
    def test_bound_is_admissible_and_complete_cost_exact(self, ctx):
        constraint = MaxCountSoftConstraint("BATHS", 1,
                                            violation_cost=2.5)
        rng = np.random.default_rng(7)
        evaluator = constraint.evaluator(ctx)
        assignment: dict[str, str] = {}
        stack: list[tuple[str, str, float]] = []  # (tag, label, bound)
        unassigned = list(TAGS)
        completes_seen = 0
        for _ in range(300):
            if stack and (not unassigned or rng.random() < 0.4):
                tag, label, _ = stack.pop()
                evaluator.pop(tag, label, assignment, ctx)
                del assignment[tag]
                unassigned.append(tag)
                # The bound must rewind with the pop.
                expected = stack[-1][2] if stack else 0.0
                assert evaluator.bound == expected
                continue
            tag = unassigned[int(rng.integers(len(unassigned)))]
            label = LABELS[int(rng.integers(len(LABELS)))]
            assignment[tag] = label
            evaluator.push(tag, label, assignment, ctx)
            stack.append((tag, label, evaluator.bound))
            unassigned.remove(tag)
            if not unassigned:
                completes_seen += 1
                exact = constraint.cost(assignment, ctx)
                assert evaluator.complete_cost(assignment, ctx) == exact
                # Every bound recorded on the path down was a valid
                # lower bound for this completion.
                assert all(bound <= exact for _, _, bound in stack)
        assert completes_seen > 0

    def test_bound_zero_after_full_unwind(self, ctx):
        constraint = MaxCountSoftConstraint("BATHS", 0)
        evaluator = constraint.evaluator(ctx)
        assignment = {}
        for tag in TAGS:
            assignment[tag] = "BATHS"
            evaluator.push(tag, "BATHS", assignment, ctx)
        assert evaluator.bound == constraint.violation_cost
        for tag in reversed(TAGS):
            evaluator.pop(tag, "BATHS", assignment, ctx)
            del assignment[tag]
        assert evaluator.bound == 0.0
