"""Tests for the label confusion matrix."""

import pytest

from repro.core import Mapping
from repro.evaluation import ConfusionMatrix


def matrix_with(*outcomes):
    """Build a matrix from (predicted_dict, truth_dict) pairs."""
    matrix = ConfusionMatrix()
    for predicted, truth in outcomes:
        matrix.record(Mapping(predicted), Mapping(truth))
    return matrix


class TestConfusionMatrix:
    def test_diagonal_counts(self):
        matrix = matrix_with(
            ({"a": "X", "b": "Y"}, {"a": "X", "b": "Y"}))
        assert matrix.count("X", "X") == 1
        assert matrix.accuracy() == 1.0
        assert matrix.confusions() == []

    def test_off_diagonal(self):
        matrix = matrix_with(
            ({"a": "Y"}, {"a": "X"}),
            ({"a": "Y"}, {"a": "X"}),
            ({"b": "Z"}, {"b": "X"}))
        assert matrix.count("X", "Y") == 2
        assert matrix.confusions()[0] == ("X", "Y", 2)
        assert matrix.accuracy() == 0.0

    def test_confusions_sorted_and_capped(self):
        matrix = matrix_with(
            ({"a": "Y", "b": "Z", "c": "Z"},
             {"a": "X", "b": "X", "c": "X"}),
            ({"a": "Z"}, {"a": "X"}))
        cells = matrix.confusions(top=1)
        assert cells == [("X", "Z", 3)]

    def test_recall(self):
        matrix = matrix_with(
            ({"a": "X", "b": "Y"}, {"a": "X", "b": "X"}))
        assert matrix.recall("X") == pytest.approx(0.5)
        assert matrix.recall("NEVER-SEEN") == 0.0

    def test_unmapped_tags_skipped(self):
        matrix = matrix_with(({"a": "X"}, {"a": "X", "b": "Y"}))
        assert matrix.total() == 1

    def test_report_renders(self):
        matrix = matrix_with(({"a": "Y"}, {"a": "X"}))
        report = matrix.report()
        assert "X" in report and "Y" in report and "accuracy" in report

    def test_empty_report(self):
        assert "(none)" in ConfusionMatrix().report()

    def test_integration_with_real_match(self):
        from repro.datasets import load_domain
        from repro.evaluation import SystemConfig, build_system

        domain = load_domain("faculty", seed=0)
        system = build_system(domain, SystemConfig("complete"),
                              max_instances_per_tag=15)
        for source in domain.sources[:3]:
            system.add_training_source(source.schema,
                                       source.listings(15),
                                       source.mapping)
        system.train()
        matrix = ConfusionMatrix()
        for source in domain.sources[3:]:
            result = system.match(source.schema, source.listings(15))
            matrix.record(result.mapping, source.mapping)
        assert matrix.total() > 0
        assert 0.0 <= matrix.accuracy() <= 1.0
