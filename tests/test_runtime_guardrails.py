"""Unit tests for the runtime watchdog (:mod:`repro.runtime.
supervisor`) and the memory-pressure guardrails (:mod:`repro.runtime.
pressure`), driven tick-by-tick with fake pools and injected RSS
samples — no timing dependence."""

import pytest

from repro.core import featurize
from repro.core.parallel import SHARD_SCALE, shard_bounds
from repro.observability.metrics import (M_PRESSURE_ACTIONS,
                                         M_PRESSURE_LEVEL,
                                         M_WATCHDOG_KILLS,
                                         M_WATCHDOG_STALLS,
                                         MetricsRegistry)
from repro.resilience import ResiliencePolicy
from repro.runtime import (PressureMonitor, PressureThresholds,
                           Supervisor)
from repro.runtime.pressure import TIER_ACTIONS


@pytest.fixture(autouse=True)
def _reset_shared_runtime_state():
    yield
    SHARD_SCALE.reset()
    featurize.clear_text_cache()


class FakePool:
    broken = False

    def __init__(self, ages):
        self._ages = dict(ages)
        self.killed = []

    def dispatch_ages(self):
        return dict(self._ages)

    def kill_worker(self, worker_id):
        self.killed.append(worker_id)
        self._ages.pop(worker_id, None)


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------

class TestSupervisor:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            Supervisor(0)

    def test_overdue_workers_are_killed_and_recorded(self):
        pool = FakePool({0: 0.5, 1: 3.0, 2: 7.5})
        policy = ResiliencePolicy()
        registry = MetricsRegistry()
        supervisor = Supervisor(2.0, pool_provider=lambda: pool,
                                policy=policy, registry=registry)
        killed = supervisor.check_once(now=100.0)
        assert killed == [1, 2]
        assert pool.killed == [1, 2]
        assert supervisor.kills == [1, 2]
        kinds = [event["kind"] for event in policy.report.watchdog]
        assert kinds == ["worker_killed", "worker_killed"]
        assert registry.counter(M_WATCHDOG_KILLS).value == 2
        assert policy.report.degraded

    def test_in_deadline_workers_survive(self):
        pool = FakePool({0: 0.5})
        supervisor = Supervisor(2.0, pool_provider=lambda: pool)
        assert supervisor.check_once(now=100.0) == []
        assert pool.killed == []

    def test_broken_or_absent_pool_is_skipped(self):
        supervisor = Supervisor(1.0, pool_provider=lambda: None)
        assert supervisor.check_once(now=0.0) == []
        pool = FakePool({0: 99.0})
        pool.broken = True
        supervisor = Supervisor(1.0, pool_provider=lambda: pool)
        assert supervisor.check_once(now=0.0) == []
        assert pool.killed == []

    def test_silence_past_deadline_trips_the_run_deadline(self):
        policy = ResiliencePolicy()
        deadline = policy.start_deadline()
        registry = MetricsRegistry()
        supervisor = Supervisor(5.0, policy=policy, registry=registry)
        supervisor.note_event("stage_start", {"stage": "predict"})
        beat = supervisor._last_beat
        assert not deadline.expired()
        supervisor.check_once(now=beat + 5.5)
        assert deadline.expired()  # anytime exit forced
        stalls = [event for event in policy.report.watchdog
                  if event["kind"] == "stall"]
        assert len(stalls) == 1
        assert registry.counter(M_WATCHDOG_STALLS).value == 1

    def test_stall_records_once_until_a_new_heartbeat(self):
        policy = ResiliencePolicy()
        supervisor = Supervisor(5.0, policy=policy)
        supervisor.note_event("stage_start", {})
        beat = supervisor._last_beat
        supervisor.check_once(now=beat + 6.0)
        supervisor.check_once(now=beat + 7.0)  # still the same stall
        assert len(policy.report.watchdog) == 1
        supervisor.note_event("shard_complete", {})  # progress resumed
        beat = supervisor._last_beat
        supervisor.check_once(now=beat + 6.0)  # a second, new stall
        assert len(policy.report.watchdog) == 2

    def test_no_heartbeat_ever_means_no_stall(self):
        """Without an event stream there is no heartbeat signal; the
        supervisor must not fabricate stalls from silence it never
        had a baseline for."""
        policy = ResiliencePolicy()
        supervisor = Supervisor(1.0, policy=policy)
        supervisor.check_once(now=1e9)
        assert policy.report.watchdog == []

    def test_thread_lifecycle_is_idempotent(self):
        supervisor = Supervisor(5.0, poll=0.01)
        with supervisor:
            assert supervisor._thread is not None
            supervisor.start()  # second start: same thread
        assert supervisor._thread is None
        supervisor.stop()  # stop after stop: no-op


# ---------------------------------------------------------------------------
# memory pressure
# ---------------------------------------------------------------------------

class TestPressureMonitor:
    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            PressureMonitor(0)

    def test_nominal_rss_takes_no_action(self):
        monitor = PressureMonitor(1000)
        assert monitor.sample_once(rss_bytes=500) == 0
        assert monitor.actions == []

    def test_shed_tier_clears_the_featurize_cache(self):
        featurize._text_cache["seed"] = ["cached"]
        monitor = PressureMonitor(1000)
        assert monitor.sample_once(rss_bytes=850) == 1
        assert monitor.actions == [TIER_ACTIONS[1]]
        assert featurize._text_cache == {}

    def test_reshard_tier_halves_the_shard_grain(self):
        wide = shard_bounds(10_000)
        monitor = PressureMonitor(1000)
        assert monitor.sample_once(rss_bytes=920) == 2
        assert SHARD_SCALE.factor == 2
        finer = shard_bounds(10_000)
        assert len(finer) > len(wide)
        # Coverage is unchanged — only the grain moved.
        assert finer[0][0] == 0 and finer[-1][1] == 10_000

    def test_degrade_tier_trips_deadline_and_runs_hook(self):
        policy = ResiliencePolicy()
        deadline = policy.start_deadline()
        flushed = []
        monitor = PressureMonitor(1000, policy=policy,
                                  on_degrade=lambda: flushed.append(1))
        assert monitor.sample_once(rss_bytes=990) == 3
        assert deadline.expired()
        assert flushed == [1]

    def test_a_spike_escalates_through_every_tier_in_order(self):
        policy = ResiliencePolicy()
        registry = MetricsRegistry()
        monitor = PressureMonitor(1000, policy=policy,
                                  registry=registry)
        monitor.sample_once(rss_bytes=990)
        assert monitor.actions == [TIER_ACTIONS[1], TIER_ACTIONS[2],
                                   TIER_ACTIONS[3]]
        assert [e["tier"] for e in policy.report.pressure_events] == \
            [1, 2, 3]
        assert registry.counter(M_PRESSURE_ACTIONS).value == 3
        assert registry.gauge(M_PRESSURE_LEVEL).value == 3.0
        assert policy.report.degraded

    def test_tiers_fire_once_while_pressure_stays_high(self):
        monitor = PressureMonitor(1000)
        monitor.sample_once(rss_bytes=850)
        monitor.sample_once(rss_bytes=860)
        assert monitor.actions == [TIER_ACTIONS[1]]

    def test_receding_pressure_rearms_the_tiers(self):
        monitor = PressureMonitor(1000)
        monitor.sample_once(rss_bytes=850)
        monitor.sample_once(rss_bytes=300)  # below the shed watermark
        monitor.sample_once(rss_bytes=850)  # sawtooth climbs again
        assert monitor.actions == [TIER_ACTIONS[1], TIER_ACTIONS[1]]

    def test_custom_thresholds(self):
        monitor = PressureMonitor(
            1000, thresholds=PressureThresholds(shed=0.5, reshard=0.6,
                                                degrade=0.7))
        assert monitor.sample_once(rss_bytes=550) == 1

    def test_live_reader_drives_the_default_path(self):
        monitor = PressureMonitor(1)  # 1 byte: any real RSS is tier 3
        policy_free_tier = monitor.sample_once()
        assert policy_free_tier == 3


# ---------------------------------------------------------------------------
# shard-grain scale
# ---------------------------------------------------------------------------

class TestShardScale:
    def test_halve_doubles_factor_up_to_the_cap(self):
        for expected in (2, 4, 8, 16, 16):
            assert SHARD_SCALE.halve() == expected
        SHARD_SCALE.reset()
        assert SHARD_SCALE.factor == 1

    def test_scaled_plans_cover_identically(self):
        baseline = shard_bounds(997)
        SHARD_SCALE.halve()
        finer = shard_bounds(997)
        flat = [row for start, stop in finer
                for row in range(start, stop)]
        assert flat == list(range(997))
        assert len(finer) >= len(baseline)
