"""Interprocedural flow analysis: call-graph construction, the three
taint lattices (determinism, worker purity, fault escape), chain
evidence on findings, and the resolution-ratio acceptance gate over
the real source tree."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.engine import (SourceFile, analyze_sources,
                                   get_rules, iter_python_files,
                                   load_source)
from repro.analysis.flow.callgraph import build_graph, module_name
from repro.analysis.flow.reachability import (callers_of, chain_to,
                                              reachable_from,
                                              render_chain)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _src(display: str, code: str) -> SourceFile:
    return SourceFile(Path(display), display, textwrap.dedent(code))


def _flow(code_by_display: dict[str, str], *rule_ids: str):
    sources = [_src(display, code)
               for display, code in code_by_display.items()]
    return analyze_sources(sources, rules=get_rules(list(rule_ids)))


# ---------------------------------------------------------------------------
# call graph construction
# ---------------------------------------------------------------------------

class TestCallGraph:
    def test_module_name_mapping(self):
        assert module_name("src/repro/core/matching.py") == \
            "repro.core.matching"
        assert module_name("src/repro/text/__init__.py") == "repro.text"
        assert module_name("tests/test_foo.py") is None

    def test_direct_and_method_edges(self):
        graph = build_graph([_src("src/repro/core/system.py", """\
            class LSDSystem:
                def match(self):
                    return self._score()

                def _score(self):
                    return _norm(1.0)

            def _norm(value):
                return value
            """)])
        match = "repro.core.system.LSDSystem.match"
        score = "repro.core.system.LSDSystem._score"
        norm = "repro.core.system._norm"
        assert {edge.callee for edge in graph.edges_from(match)} == \
            {score}
        assert {edge.callee for edge in graph.edges_from(score)} == \
            {norm}
        assert graph.resolution_ratio == 1.0

    def test_unresolved_calls_are_recorded_not_dropped(self):
        graph = build_graph([_src("src/repro/core/system.py", """\
            def run(hook):
                return hook()
            """)])
        assert graph.resolution_ratio == 0.0
        assert len(graph.unresolved) == 1
        assert graph.unresolved[0].reason == "callable parameter"

    def test_fanout_callable_becomes_worker_root(self):
        graph = build_graph([_src("src/repro/core/tasks.py", """\
            def run(executor, items):
                return executor.map(_job, items)

            def _job(item):
                return item
            """)])
        assert "repro.core.tasks._job" in graph.worker_roots

    def test_stats_and_serialisers(self, tmp_path):
        graph = build_graph([_src("src/repro/core/tasks.py", """\
            def outer():
                return inner()

            def inner():
                return 1
            """)])
        stats = graph.stats()
        assert stats["functions"] == 3  # two defs + the <module> pseudo-node
        assert stats["resolution_ratio"] == 1.0
        payload = json.loads(graph.to_json())
        assert "repro.core.tasks.outer" in {
            entry["qualname"] for entry in payload["functions"]}
        assert graph.to_dot().startswith("digraph")


class TestReachability:
    def _graph(self):
        return build_graph([_src("src/repro/core/chainmod.py", """\
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1

            def orphan():
                return c()
            """)])

    def test_forest_and_shortest_chain(self):
        graph = self._graph()
        forest = reachable_from(graph, ["repro.core.chainmod.a"])
        assert chain_to(forest, "repro.core.chainmod.c") == [
            "repro.core.chainmod.a", "repro.core.chainmod.b",
            "repro.core.chainmod.c"]
        assert "repro.core.chainmod.orphan" not in forest
        assert chain_to(forest, "repro.core.chainmod.orphan") == []

    def test_callers_walk_upward(self):
        graph = self._graph()
        reverse = callers_of(graph, ["repro.core.chainmod.c"])
        assert set(reverse) == {
            "repro.core.chainmod.a", "repro.core.chainmod.b",
            "repro.core.chainmod.c", "repro.core.chainmod.orphan"}

    def test_render_chain_strips_project_prefix(self):
        assert render_chain(["repro.core.a", "repro.core.b"]) == \
            "core.a -> core.b"


# ---------------------------------------------------------------------------
# determinism lattice
# ---------------------------------------------------------------------------

DETERMINISM_HIT = """\
import time

class LSDSystem:
    def match(self):
        return _stamp()

def _stamp():
    return time.time()
"""

DETERMINISM_CLEAN = """\
import time

class LSDSystem:
    def match(self):
        return 1

def _stamp():
    return time.time()
"""


class TestDeterminismLattice:
    def test_primitive_reachable_from_match_is_found(self):
        result = _flow({"src/repro/core/system.py": DETERMINISM_HIT},
                       "flow-nondeterministic-path")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "flow-nondeterministic-path"
        assert finding.line == 8
        assert finding.chain == (
            "repro.core.system.LSDSystem.match",
            "repro.core.system._stamp")

    def test_unreachable_primitive_is_not_found(self):
        result = _flow({"src/repro/core/system.py": DETERMINISM_CLEAN},
                       "flow-nondeterministic-path")
        assert result.findings == []

    def test_source_suppression_silences_the_path(self):
        code = DETERMINISM_HIT.replace(
            "time.time()", "time.time()  # lsd: ignore[wallclock]")
        result = _flow({"src/repro/core/system.py": code},
                       "flow-nondeterministic-path")
        assert result.findings == []


# ---------------------------------------------------------------------------
# worker-purity lattice
# ---------------------------------------------------------------------------

WORKER_HIT = """\
CACHE = {}

def run(executor, items):
    return executor.map(_job, items)

def _job(item):
    return _note(item)

def _note(item):
    CACHE[item] = True
    return item
"""


class TestWorkerPurityLattice:
    def test_transitive_shared_write_is_found(self):
        result = _flow({"src/repro/core/tasks.py": WORKER_HIT},
                       "flow-worker-shared-write")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "flow-worker-shared-write"
        assert finding.line == 10
        assert finding.chain == (
            "repro.core.tasks._job", "repro.core.tasks._note")

    def test_benign_cache_stays_allowlisted_at_depth(self):
        code = WORKER_HIT.replace("CACHE", "feature_cache")
        result = _flow({"src/repro/core/tasks.py": code},
                       "flow-worker-shared-write")
        assert result.findings == []

    def test_write_outside_worker_paths_is_not_found(self):
        code = WORKER_HIT.replace("executor.map(_job, items)", "items")
        result = _flow({"src/repro/core/tasks.py": code},
                       "flow-worker-shared-write")
        assert result.findings == []


# ---------------------------------------------------------------------------
# fault-escape lattice
# ---------------------------------------------------------------------------

FAULT_ESCAPE = """\
def write_artifact(policy, path):
    policy.fire("artifact.write")
    path.write_text("x")

def run(policy, path):
    write_artifact(policy, path)
"""

FAULT_HANDLED = """\
def write_artifact(policy, path):
    policy.fire("artifact.write")
    path.write_text("x")

def run(policy, path):
    try:
        write_artifact(policy, path)
    except FaultInjected:
        pass
"""

FAULT_DOCUMENTED = '''\
def write_artifact(policy, path):
    """Arms the write site; FaultInjected propagates to the caller."""
    policy.fire("artifact.write")
    path.write_text("x")
'''


class TestFaultEscapeLattice:
    def test_unhandled_site_is_found_with_caller_chain(self):
        result = _flow({"src/repro/resilience/armed.py": FAULT_ESCAPE},
                       "flow-fault-unhandled")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "flow-fault-unhandled"
        assert finding.line == 2
        assert "artifact.write" in finding.message
        assert finding.chain == (
            "repro.resilience.armed.run",
            "repro.resilience.armed.write_artifact")

    def test_handler_on_caller_path_clears_the_site(self):
        result = _flow({"src/repro/resilience/armed.py": FAULT_HANDLED},
                       "flow-fault-unhandled")
        assert result.findings == []

    def test_documented_propagation_is_an_explicit_opt_out(self):
        result = _flow(
            {"src/repro/resilience/armed.py": FAULT_DOCUMENTED},
            "flow-fault-unhandled")
        assert result.findings == []

    def test_exception_catchall_counts_as_handling(self):
        code = FAULT_HANDLED.replace("except FaultInjected:",
                                     "except Exception:")
        result = _flow({"src/repro/resilience/armed.py": code},
                       "flow-fault-unhandled")
        assert result.findings == []


# ---------------------------------------------------------------------------
# soundness-gap and observability rules
# ---------------------------------------------------------------------------

class TestUnresolvedHotCall:
    def test_unresolved_call_on_hot_path_warns(self):
        result = _flow({"src/repro/core/system.py": """\
            class LSDSystem:
                def match(self, hook):
                    return hook()
            """}, "flow-unresolved-hot-call")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.severity == "warning"
        assert "callable parameter" in finding.message
        assert finding.chain == ("repro.core.system.LSDSystem.match",)

    def test_unresolved_call_off_the_hot_path_is_silent(self):
        result = _flow({"src/repro/core/system.py": """\
            def helper(hook):
                return hook()
            """}, "flow-unresolved-hot-call")
        assert result.findings == []


class TestObserverGap:
    def test_parentless_span_on_worker_path_is_found(self):
        result = _flow({"src/repro/core/tasks.py": """\
            def run(executor, items):
                return executor.map(_job, items)

            def _job(tracer, item):
                with tracer.span("work"):
                    return item
            """}, "flow-observer-gap")
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.line == 5
        assert finding.chain == ("repro.core.tasks._job",)

    def test_explicit_parent_clears_the_span(self):
        result = _flow({"src/repro/core/tasks.py": """\
            def run(executor, items):
                return executor.map(_job, items)

            def _job(tracer, parent, item):
                with tracer.span("work", parent=parent):
                    return item
            """}, "flow-observer-gap")
        assert result.findings == []


# ---------------------------------------------------------------------------
# engine / CLI integration
# ---------------------------------------------------------------------------

class TestFlowIntegration:
    def test_default_rule_set_excludes_flow_rules(self):
        assert not any(rule.requires_flow for rule in get_rules())

    def test_flow_glob_selects_exactly_the_flow_rules(self):
        rules = get_rules(["flow-*"])
        assert sorted(rule.id for rule in rules) == [
            "flow-fault-unhandled", "flow-nondeterministic-path",
            "flow-observer-gap", "flow-unresolved-hot-call",
            "flow-worker-shared-write"]
        assert all(rule.requires_flow for rule in rules)

    def _write_fixture(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "system.py").write_text(DETERMINISM_HIT)
        return tmp_path / "src"

    def test_cli_flow_renders_chain_and_writes_stats(self, tmp_path,
                                                     capsys):
        root = self._write_fixture(tmp_path)
        artifact = tmp_path / "flow.json"
        code = lint_main(["--flow", "--no-baseline",
                          "--json", str(artifact), str(root)])
        assert code == 1
        out = capsys.readouterr().out
        assert "[flow-nondeterministic-path]" in out
        assert "via repro.core.system.LSDSystem.match -> " \
               "repro.core.system._stamp" in out
        payload = json.loads(artifact.read_text())
        assert payload["findings"][0]["chain"] == [
            "repro.core.system.LSDSystem.match",
            "repro.core.system._stamp"]
        assert payload["callgraph"]["resolution_ratio"] == 1.0

    def test_cli_dump_callgraph_json_and_dot(self, tmp_path, capsys):
        root = self._write_fixture(tmp_path)
        for name in ("graph.json", "graph.dot"):
            out_file = tmp_path / name
            lint_main(["--flow", "--no-baseline",
                       "--dump-callgraph", str(out_file), str(root)])
            assert out_file.exists()
        assert json.loads((tmp_path / "graph.json").read_text())
        assert (tmp_path / "graph.dot").read_text().startswith("digraph")
        assert "call graph ->" in capsys.readouterr().out


class TestRepositoryGates:
    """Acceptance gates over the real source tree."""

    @pytest.fixture(scope="class")
    def repo_graph(self):
        paths = [load_source(path) for path in
                 iter_python_files([REPO_ROOT / "src"])]
        return build_graph([source for source in paths
                            if source.tree is not None])

    def test_resolution_ratio_meets_ninety_percent_gate(self,
                                                        repo_graph):
        assert repo_graph.resolution_ratio >= 0.90

    def test_worker_roots_are_discovered(self, repo_graph):
        assert repo_graph.worker_roots

    def test_known_entry_points_exist(self, repo_graph):
        assert "repro.core.system.LSDSystem.match" in \
            repo_graph.functions
