"""Crash-safe checkpoint/resume, end to end.

The durability contract: a run killed at any stage boundary resumes to
a byte-identical mapping. Proven two ways — in-process against the
matching pipeline directly (fast, covers partial-manifest resume), and
through the real CLI with an injected ``SIGKILL``
(``LSD_CHECKPOINT_CRASH``) followed by ``--resume``.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import _graceful_shutdown, main
from repro.observability import dataset_fingerprint
from repro.resilience import ResiliencePolicy
from repro.runtime import Checkpointer, run_key

from .test_core_system import (GREATHOMES_LISTINGS, GREATHOMES_SCHEMA,
                               trained_system)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def system():
    return trained_system()


def _match(system, checkpoint=None):
    return system.match(GREATHOMES_SCHEMA, GREATHOMES_LISTINGS,
                        checkpoint=checkpoint)


def _open_checkpoint(tmp_path, resume=False):
    fingerprint = dataset_fingerprint(
        GREATHOMES_SCHEMA.tags,
        [listing.text_content() for listing in GREATHOMES_LISTINGS])
    checkpoint = Checkpointer(tmp_path / "ck", run_key(fingerprint))
    checkpoint.open(resume=resume)
    return checkpoint


class TestInProcessResume:
    def test_checkpointed_run_matches_the_baseline(self, system,
                                                   tmp_path):
        baseline = _match(system)
        checkpointed = _match(system,
                              checkpoint=_open_checkpoint(tmp_path))
        assert checkpointed.mapping == baseline.mapping

    def test_full_resume_replays_the_identical_mapping(self, system,
                                                       tmp_path):
        baseline = _match(system, checkpoint=_open_checkpoint(tmp_path))
        resumed_ck = _open_checkpoint(tmp_path, resume=True)
        assert resumed_ck.resumed_from is not None
        assert resumed_ck.has("constrain")
        resumed = _match(system, checkpoint=resumed_ck)
        assert resumed.mapping == baseline.mapping

    def test_resume_from_extract_only_is_byte_identical(self, system,
                                                        tmp_path):
        """Simulate a crash right after the extract stage committed:
        the resumed run must re-predict and re-search to the same
        mapping the uninterrupted run produced."""
        baseline = _match(system, checkpoint=_open_checkpoint(tmp_path))
        partial = _open_checkpoint(tmp_path, resume=True)
        partial.manifest["stages"] = ["extract"]
        partial.manifest["scores"] = {}
        resumed = _match(system, checkpoint=partial)
        assert resumed.mapping == baseline.mapping
        assert partial.has("predict") and partial.has("constrain")

    def test_resume_from_predict_skips_rescoring(self, system,
                                                 tmp_path):
        baseline = _match(system, checkpoint=_open_checkpoint(tmp_path))
        partial = _open_checkpoint(tmp_path, resume=True)
        partial.manifest["stages"] = ["extract", "predict"]
        resumed = _match(system, checkpoint=partial)
        assert resumed.mapping == baseline.mapping


class TestGracefulShutdown:
    def test_sigterm_trips_the_deadline_and_is_recorded(self):
        policy = ResiliencePolicy()
        deadline = policy.start_deadline()
        before = signal.getsignal(signal.SIGTERM)
        with _graceful_shutdown(policy):
            os.kill(os.getpid(), signal.SIGTERM)
            # The handler converts the signal into a deadline trip; the
            # run then finishes through its normal artifact writers.
            assert deadline.expired()
        shutdowns = [event for event in policy.report.watchdog
                     if event["kind"] == "shutdown"]
        assert len(shutdowns) == 1
        assert "SIGTERM" in shutdowns[0]["detail"]
        assert signal.getsignal(signal.SIGTERM) is before

    def test_flag_validation(self, tmp_path):
        base = ["match", "--model", str(tmp_path / "m"), "--schema",
                str(tmp_path / "s"), "--listings", str(tmp_path / "l")]
        assert main(base + ["--resume"]) == 2
        assert main(base + ["--checkpoint-dir", str(tmp_path),
                            "--watchdog", "0"]) == 2
        assert main(base + ["--rss-limit", "-1"]) == 2


# ---------------------------------------------------------------------------
# CLI SIGKILL matrix
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def cli_workspace(tmp_path_factory):
    """A generated domain plus a trained model, built once through the
    real CLI entry point."""
    root = tmp_path_factory.mktemp("cli-durability")
    data = root / "data"
    model = root / "model.lsd"
    assert main(["generate", "--domain", "real_estate_1",
                 "--out", str(data), "--listings", "20",
                 "--seed", "7"]) == 0
    assert main(["train", "--mediated", str(data / "mediated.dtd"),
                 "--train", str(data / "homeseekers.com"),
                 str(data / "yahoo-homes.com"),
                 "--constraints", str(data / "constraints.txt"),
                 "--model", str(model), "--max-instances", "20"]) == 0
    return root


def _match_argv(workspace: Path, out: Path, *extra: str) -> list[str]:
    source = workspace / "data" / "greathomes.com"
    return ["match", "--model", str(workspace / "model.lsd"),
            "--schema", str(source / "schema.dtd"),
            "--listings", str(source / "listings.xml"),
            "--out", str(out), *extra]


def _run_cli(argv: list[str], crash_stage: str | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if crash_stage is not None:
        env["LSD_CHECKPOINT_CRASH"] = crash_stage
    else:
        env.pop("LSD_CHECKPOINT_CRASH", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv], env=env,
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=300)


class TestCliCrashResume:
    @pytest.mark.parametrize("stage", ["extract", "predict",
                                       "constrain"])
    def test_sigkill_then_resume_is_byte_identical(
            self, cli_workspace, tmp_path, stage):
        baseline = tmp_path / "baseline.txt"
        assert main(_match_argv(cli_workspace, baseline)) == 0

        ck_dir = tmp_path / "ck"
        out = tmp_path / "mapping.txt"
        killed = _run_cli(
            _match_argv(cli_workspace, out,
                        "--checkpoint-dir", str(ck_dir)),
            crash_stage=stage)
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert not out.exists()

        resumed = _run_cli(
            _match_argv(cli_workspace, out, "--checkpoint-dir",
                        str(ck_dir), "--resume"))
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming run" in resumed.stdout
        assert out.read_bytes() == baseline.read_bytes()

    def test_constraints_source_exists(self, cli_workspace):
        source = cli_workspace / "data" / "greathomes.com"
        assert (source / "schema.dtd").exists()
        assert (source / "listings.xml").exists()
