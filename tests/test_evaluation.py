"""Tests for the evaluation harness (configurations, methodology,
feedback oracle, reporting)."""

import pytest

from repro.constraints import (FrequencyConstraint, KeyConstraint,
                               FunctionalDependencyConstraint)
from repro.datasets import load_domain
from repro.evaluation import (Accumulator, ExperimentSettings,
                              SystemConfig, build_system,
                              corrections_to_perfect, feedback_table,
                              filter_constraints, format_table,
                              information_configs, ladder_table,
                              lesion_configs, percent, run_configuration,
                              run_feedback_study, single_learner_config,
                              table3_row, train_test_splits)

FAST = ExperimentSettings(n_listings=25, trials=1, max_splits=2,
                          max_instances_per_tag=25)


@pytest.fixture(scope="module")
def domain():
    return load_domain("faculty", seed=0)


class TestAccumulator:
    def test_mean_and_std(self):
        acc = Accumulator()
        acc.extend([0.5, 1.0])
        assert acc.mean == pytest.approx(0.75)
        assert acc.std == pytest.approx(0.3535533906)
        assert acc.count == 2

    def test_empty(self):
        acc = Accumulator()
        assert acc.mean == 0.0 and acc.std == 0.0

    def test_single_value_std_zero(self):
        acc = Accumulator()
        acc.add(0.9)
        assert acc.std == 0.0


class TestConfigurations:
    def test_single_learner_config(self):
        config = single_learner_config("naive_bayes")
        assert config.learners == ("naive_bayes",)
        assert not config.use_constraints and not config.use_xml

    def test_lesion_configs_cover_components(self):
        names = [c.name for c in lesion_configs()]
        assert "without name matcher" in names
        assert "without constraint handler" in names
        assert "complete" in names

    def test_information_configs(self):
        configs = {c.name: c for c in information_configs()}
        assert configs["schema only"].learners == ("name_matcher",)
        assert configs["schema only"].constraint_information == "schema"
        assert configs["data only"].constraint_information == "data"

    def test_build_system_wires_recognizers(self, domain):
        system = build_system(domain, SystemConfig("complete"))
        assert "university_recognizer" in system.learner_names()

    def test_build_system_without_recognizers(self, domain):
        config = SystemConfig("bare", use_recognizers=False)
        system = build_system(domain, config)
        assert "university_recognizer" not in system.learner_names()

    def test_describe(self):
        assert "meta" in SystemConfig("x").describe()


class TestConstraintFiltering:
    CONSTRAINTS = [
        FrequencyConstraint.at_most_one("A"),
        KeyConstraint("B"),
        FunctionalDependencyConstraint(["A"], "B"),
    ]

    def test_both_keeps_all(self):
        assert len(filter_constraints(self.CONSTRAINTS, "both")) == 3

    def test_schema_drops_column(self):
        kept = filter_constraints(self.CONSTRAINTS, "schema")
        assert len(kept) == 1
        assert isinstance(kept[0], FrequencyConstraint)

    def test_data_keeps_column(self):
        kept = filter_constraints(self.CONSTRAINTS, "data")
        assert len(kept) == 2

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            filter_constraints(self.CONSTRAINTS, "everything")


class TestMethodology:
    def test_all_ten_splits(self, domain):
        splits = train_test_splits(domain.sources)
        assert len(splits) == 10
        for train, test in splits:
            assert len(train) == 3 and len(test) == 2
            assert not {s.name for s in train} & {s.name for s in test}

    def test_max_splits(self, domain):
        assert len(train_test_splits(domain.sources, max_splits=4)) == 4

    def test_run_configuration_records_observations(self, domain):
        result = run_configuration(domain, SystemConfig("complete"), FAST)
        # 1 trial x 2 splits x 2 test sources = 4 observations.
        assert result.overall.count == 4
        assert 0.0 <= result.mean_accuracy <= 1.0

    def test_complete_beats_or_ties_single_learner(self, domain):
        complete = run_configuration(domain, SystemConfig("complete"),
                                     FAST)
        single = run_configuration(
            domain, single_learner_config("naive_bayes"), FAST)
        assert complete.mean_accuracy >= single.mean_accuracy - 0.05


class TestFeedback:
    def test_corrections_reach_perfect(self, domain):
        source = domain.sources[3]
        system = build_system(domain, SystemConfig("complete"),
                              max_instances_per_tag=25)
        for train in domain.sources[:3]:
            system.add_training_source(train.schema, train.listings(25),
                                       train.mapping)
        system.train()
        outcome = corrections_to_perfect(system, source, n_listings=25)
        assert outcome.final_accuracy == 1.0
        assert outcome.corrections <= outcome.total_tags

    def test_feedback_study_aggregates(self, domain):
        settings = ExperimentSettings(n_listings=20, trials=1,
                                      max_instances_per_tag=20)
        study = run_feedback_study(domain, settings, runs=2)
        assert study.corrections.count == 2
        assert all(o.final_accuracy == 1.0 for o in study.outcomes)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A  ")
        assert all(len(l) >= 6 for l in lines[1:])

    def test_percent(self):
        assert percent(0.8235) == "82.3%"

    def test_table3_row_shape(self, domain):
        row = table3_row(domain)
        assert row[0] == "Faculty Listings"
        assert len(row) == 10

    def test_ladder_table_renders(self, domain):
        result = run_configuration(domain, SystemConfig("complete"), FAST)
        ladder = {"best_base": result, "meta": result,
                  "constraints": result, "complete": result}
        out = ladder_table({"faculty": ladder})
        assert "faculty" in out and "%" in out

    def test_feedback_table_renders(self, domain):
        settings = ExperimentSettings(n_listings=15, trials=1,
                                      max_instances_per_tag=15)
        study = run_feedback_study(domain, settings, runs=1)
        out = feedback_table([study])
        assert "faculty" in out
