"""Tests for the name matcher and content matcher."""

import numpy as np
import pytest

from repro.learners import ContentMatcher, NameMatcher
from repro.text import SynonymDictionary

from .helpers import make_instance, space_of, training_set

SPACE = space_of("ADDRESS", "DESCRIPTION", "AGENT-PHONE")

TRAINING = [
    (make_instance("location", "Miami, FL"), "ADDRESS"),
    (make_instance("location", "Boston, MA"), "ADDRESS"),
    (make_instance("house-addr", "Seattle, WA"), "ADDRESS"),
    (make_instance("house-addr", "Portland, OR"), "ADDRESS"),
    (make_instance("comments", "Nice area"), "DESCRIPTION"),
    (make_instance("comments", "Close to river"), "DESCRIPTION"),
    (make_instance("detailed-desc", "Fantastic house"), "DESCRIPTION"),
    (make_instance("detailed-desc", "Great yard"), "DESCRIPTION"),
    (make_instance("contact", "(305) 729 0831"), "AGENT-PHONE"),
    (make_instance("contact", "(617) 253 1429"), "AGENT-PHONE"),
    (make_instance("phone", "(206) 753 2605"), "AGENT-PHONE"),
    (make_instance("phone", "(515) 273 4312"), "AGENT-PHONE"),
]


class TestNameMatcher:
    def fitted(self, **kwargs):
        learner = NameMatcher(**kwargs)
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        return learner

    def test_shared_word_matches(self):
        learner = self.fitted()
        # 'work-phone' shares the token 'phone' with trained phone tags.
        [prediction] = learner.predict([make_instance("work-phone")])
        assert prediction.top() == "AGENT-PHONE"

    def test_synonym_expansion_helps(self):
        syn = SynonymDictionary([("area", "location")])
        learner = self.fitted(synonyms=syn)
        [prediction] = learner.predict([make_instance("area")])
        assert prediction.top() == "ADDRESS"

    def test_paper_weakness_vacuous_name(self):
        # A vacuous name with no token overlap yields an uninformative
        # (uniform) prediction — exactly the weakness §3.3 describes.
        learner = self.fitted(synonyms=SynonymDictionary())
        scores = learner.predict_scores([make_instance("item")])
        assert np.allclose(scores[0], scores[0][0])

    def test_rows_are_distributions(self):
        learner = self.fitted()
        instances = [make_instance("phone"), make_instance("location")]
        scores = learner.predict_scores(instances)
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_instances_of_same_tag_get_same_scores(self):
        learner = self.fitted()
        a = make_instance("phone", "(111) 111 1111")
        b = make_instance("phone", "completely different content")
        scores = learner.predict_scores([a, b])
        assert np.allclose(scores[0], scores[1])

    def test_path_context_used(self):
        instances, labels = training_set([
            (make_instance("name", path=("listing", "contact")),
             "AGENT-PHONE"),
            (make_instance("name", path=("listing", "house")), "ADDRESS"),
        ])
        learner = NameMatcher()
        learner.fit(instances, labels, SPACE)
        scores = learner.predict_scores(
            [make_instance("name", path=("listing", "contact"))])
        assert scores[0, SPACE.index_of("AGENT-PHONE")] > \
            scores[0, SPACE.index_of("ADDRESS")]

    def test_empty_prediction(self):
        learner = self.fitted()
        assert learner.predict_scores([]).shape == (0, len(SPACE))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NameMatcher().predict([make_instance("x")])

    def test_clone_is_unfitted(self):
        learner = self.fitted()
        clone = learner.clone()
        assert clone.space is None
        assert clone.use_paths == learner.use_paths


class TestContentMatcher:
    def fitted(self):
        learner = ContentMatcher()
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        return learner

    def test_city_state_content(self):
        learner = self.fitted()
        [prediction] = learner.predict(
            [make_instance("area", "Miami, FL")])
        assert prediction.top() == "ADDRESS"

    def test_description_content(self):
        learner = self.fitted()
        [prediction] = learner.predict(
            [make_instance("extra-info", "Fantastic yard")])
        assert prediction.top() == "DESCRIPTION"

    def test_name_is_ignored(self):
        learner = self.fitted()
        # Misleading tag name, description-like content.
        [prediction] = learner.predict(
            [make_instance("phone", "Great house close to river")])
        assert prediction.top() == "DESCRIPTION"

    def test_cap_per_label(self):
        learner = ContentMatcher(max_examples_per_label=2)
        instances, labels = training_set(TRAINING)
        learner.fit(instances, labels, SPACE)
        assert learner._index._label_matrix.shape[0] <= 2 * len(SPACE)

    def test_rows_are_distributions(self):
        learner = self.fitted()
        scores = learner.predict_scores(
            [make_instance("x", "Nice area"), make_instance("y", "zzz")])
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_clone_preserves_config(self):
        learner = ContentMatcher(max_neighbors=7,
                                 max_examples_per_label=11)
        clone = learner.clone()
        assert clone.max_neighbors == 7
        assert clone.max_examples_per_label == 11
